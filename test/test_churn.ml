(* Tests for ron_churn: the seeded join/leave schedule, the staleness
   wrapper, and the incremental repair structures. The three pinned
   guarantees: same seed => same schedule and jobs-invariant routing,
   rate 0 => byte-identical to running with no churn layer at all, and
   repair is incremental — hand-computed per-event costs, a zero
   stale-reference invariant after every event, and churn.rebuilds = 0. *)

module Rng = Ron_util.Rng
module Pool = Ron_util.Pool
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Graph_gen = Ron_graph.Graph_gen
module Sp_metric = Ron_graph.Sp_metric
module Scheme = Ron_routing.Scheme
module Basic = Ron_routing.Basic
module Labelled = Ron_routing.Labelled
module Two_mode = Ron_routing.Two_mode
module Meridian = Ron_smallworld.Meridian
module Landmark = Ron_labeling.Landmark
module Churn = Ron_churn.Churn
module Counter = Ron_obs.Counter
module Probe = Ron_obs.Probe

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)

let sp_fixture = lazy (Sp_metric.create (Graph_gen.grid 8 8))

let sample_pairs rng ~n ~count =
  List.init count (fun _ ->
      let u = Rng.int rng n in
      let v = Rng.int rng n in
      (u, v))
  |> List.filter (fun (u, v) -> u <> v)

let with_probes f =
  let was_on = !Probe.on in
  Probe.on := true;
  Fun.protect ~finally:(fun () -> Probe.on := was_on) f

(* -------------------------------------------------------------- schedule *)

let test_schedule_deterministic () =
  let mk () =
    Churn.Schedule.make ~seed:9191 ~initial_down_fraction:0.1 ~n:200 ~slots:150
      ~join_rate:0.1 ~leave_rate:0.1 ()
  in
  let a = mk () and b = mk () in
  check_bool "events equal" (Churn.Schedule.events a = Churn.Schedule.events b);
  check_bool "initial_down equal"
    (Churn.Schedule.initial_down a = Churn.Schedule.initial_down b);
  check_bool "describe equal"
    (Churn.Schedule.describe a = Churn.Schedule.describe b);
  check_bool "nonzero rates produce events"
    (Array.length (Churn.Schedule.events a) > 0)

let test_schedule_validation () =
  let bad f = try ignore (f ()); false with Invalid_argument _ -> true in
  let mk ?(idf = 0.0) ~j ~l () =
    Churn.Schedule.make ~initial_down_fraction:idf ~n:10 ~slots:5 ~join_rate:j
      ~leave_rate:l ()
  in
  check_bool "negative join_rate rejected" (bad (fun () -> mk ~j:(-0.1) ~l:0.0 ()));
  check_bool "negative leave_rate rejected" (bad (fun () -> mk ~j:0.0 ~l:(-0.1) ()));
  check_bool "rates summing past 1 rejected" (bad (fun () -> mk ~j:0.6 ~l:0.6 ()));
  check_bool "nan rate rejected" (bad (fun () -> mk ~j:nan ~l:0.0 ()));
  check_bool "initial_down_fraction 1.0 rejected"
    (bad (fun () -> mk ~idf:1.0 ~j:0.0 ~l:0.0 ()));
  check_bool "negative n rejected"
    (bad (fun () ->
         Churn.Schedule.make ~n:(-1) ~slots:5 ~join_rate:0.0 ~leave_rate:0.0 ()))

let test_schedule_rejoin_model () =
  (* Replaying the events against the initial down set must be consistent:
     leaves only take live nodes, joins only re-admit departed ones, and
     the live floor of half the eligible population holds throughout. *)
  let n = 120 in
  let eligible v = v mod 2 = 0 in
  let s =
    Churn.Schedule.make ~seed:7 ~initial_down_fraction:0.2 ~eligible ~n
      ~slots:400 ~join_rate:0.25 ~leave_rate:0.25 ()
  in
  let m = Churn.Schedule.eligible_count s in
  check_int "eligible population is the even nodes" (n / 2) m;
  Array.iter
    (fun v -> check_bool "initially-down node is eligible" (eligible v))
    (Churn.Schedule.initial_down s);
  let floor_live = m - (m / 2) in
  let down = Array.make n false in
  Array.iter (fun v -> down.(v) <- true) (Churn.Schedule.initial_down s);
  let live = ref (m - Array.length (Churn.Schedule.initial_down s)) in
  let prev_slot = ref (-1) in
  Array.iter
    (fun (e : Churn.Schedule.event) ->
      check_bool "events in strictly increasing slot order"
        (e.Churn.Schedule.slot > !prev_slot);
      prev_slot := e.Churn.Schedule.slot;
      let v = e.Churn.Schedule.node in
      check_bool "event node is eligible" (eligible v);
      (match e.Churn.Schedule.kind with
      | Churn.Schedule.Leave ->
        check_bool "leave takes a live node" (not down.(v));
        down.(v) <- true;
        decr live
      | Churn.Schedule.Join ->
        check_bool "join re-admits a departed node" down.(v);
        down.(v) <- false;
        incr live);
      check_bool "live floor holds" (!live >= floor_live))
    (Churn.Schedule.events s)

let test_schedule_null_and_state () =
  let s = Churn.Schedule.make ~seed:3 ~n:50 ~slots:100 ~join_rate:0.0 ~leave_rate:0.0 () in
  check_bool "rate 0 is null" (Churn.Schedule.is_null s);
  let st = Churn.state_of_schedule s in
  check_int "all live" 50 (Churn.live_count st);
  check_int "none down" 0 (Churn.down_count st);
  Churn.mark_leave st 7;
  check_int "leave decrements" 49 (Churn.live_count st);
  check_bool "double leave rejected"
    (try Churn.mark_leave st 7; false with Invalid_argument _ -> true);
  Churn.mark_join st 7;
  check_bool "double join rejected"
    (try Churn.mark_join st 7; false with Invalid_argument _ -> true)

(* -------------------------------------------- rate 0 => byte-identical *)

let test_rate_zero_wrapper_is_identity () =
  let st = Churn.fresh_state 30 in
  check_bool "all-live wrapper is THE identity wrapper"
    (Churn.wrapper st == Scheme.identity_wrapper)

let test_rate_zero_identical_graph_schemes () =
  let sp = Lazy.force sp_fixture in
  let n = Ron_graph.Graph.size (Sp_metric.graph sp) in
  let s = Churn.Schedule.make ~seed:9191 ~n ~slots:120 ~join_rate:0.0 ~leave_rate:0.0 () in
  let st = Churn.state_of_schedule s in
  let w = Churn.wrapper st in
  let b = Basic.build sp ~delta:0.25 in
  let l = Labelled.build sp ~delta:0.25 in
  List.iter
    (fun (u, v) ->
      check_bool "basic identical"
        (Basic.route b ~src:u ~dst:v = Basic.route_wrapped w b ~src:u ~dst:v);
      check_bool "labelled identical"
        (Labelled.route l ~src:u ~dst:v = Labelled.route_wrapped w l ~src:u ~dst:v))
    (sample_pairs (Rng.create 21) ~n ~count:200)

let test_rate_zero_identical_two_mode () =
  let idx = Indexed.create (Generators.grid2d 6 6) in
  let tm = Two_mode.build idx ~delta:0.125 in
  let n = Indexed.size idx in
  let w = Churn.wrapper (Churn.fresh_state n) in
  List.iter
    (fun (u, v) ->
      check_bool "two-mode identical"
        (Two_mode.route tm ~src:u ~dst:v = Two_mode.route_wrapped w tm ~src:u ~dst:v))
    (sample_pairs (Rng.create 22) ~n ~count:100)

let test_rate_zero_identical_meridian () =
  (* A null schedule drives zero events through the repair hooks: the
     repaired copy answers every query exactly like the original. *)
  let idx = Indexed.create (Generators.random_cloud (Rng.create 4) ~n:120 ~dim:2) in
  let members = Array.init 100 Fun.id in
  let m0 = Meridian.build idx (Rng.create 5) ~ring_size:6 ~members in
  let s = Churn.Schedule.make ~seed:1 ~n:120 ~slots:120 ~join_rate:0.0 ~leave_rate:0.0 () in
  let st = Churn.state_of_schedule s in
  let mc = Meridian.copy m0 in
  let summary =
    Churn.Driver.apply s st
      ~on_leave:(fun v ->
        let updates, refills = Meridian.leave_counted mc v in
        { Churn.updates; refills; relabels = 0 })
      ~on_join:(fun _ -> Churn.zero_cost)
      ()
  in
  check_int "no events" 0 (summary.Churn.Driver.joins + summary.Churn.Driver.leaves);
  for target = 100 to 119 do
    let start = target mod 100 in
    check_bool "meridian identical"
      (Meridian.closest m0 ~start ~target = Meridian.closest mc ~start ~target)
  done

let test_rate_zero_identical_landmark_overlay () =
  let sp = Sp_metric.create (Graph_gen.torus 8 8) in
  let n = Ron_graph.Graph.size (Sp_metric.graph sp) in
  let lm = Landmark.build sp (Rng.create 97) ~k:4 ~local_radius:2.0 in
  let balls = Array.init n (fun u -> Landmark.ball_members lm u) in
  let st = Churn.fresh_state n in
  let ov = Churn.Overlay.create st balls ~relabel_cost:(fun _ -> 1) in
  check_int "no stale entries" 0 (Churn.Overlay.stale_entries ov);
  check_int "no backlog" 0 (Churn.Overlay.backlog ov);
  for u = 0 to n - 1 do
    check_bool "rows untouched" (Churn.Overlay.row ov u = balls.(u));
    check_bool "labels valid" (Churn.Overlay.valid_label ov u)
  done

(* ------------------------------------------------- hand-computed repair *)

(* A 4-node overlay small enough to trace by hand. Rows:
     0: [1; 2]   1: [2; 3]   2: [3; 0]   3: [0; 1]
   The default substitute draws from the referrer's own pristine row, so
   with these tight rows every leave tombstones (no spare live member),
   which makes the per-event costs exactly predictable. *)
let test_overlay_hand_trace () =
  let rows = [| [| 1; 2 |]; [| 2; 3 |]; [| 3; 0 |]; [| 0; 1 |] |] in
  let st = Churn.fresh_state 4 in
  let ov = Churn.Overlay.create st rows ~relabel_cost:(fun v -> 10 + v) in

  Churn.mark_leave st 2;
  let c = Churn.Overlay.leave ov 2 in
  (* Referrers of 2 are rows 0 and 1; neither pristine row offers a spare
     live member, so both slots tombstone: 2 updates, 0 refills. *)
  check_int "leave 2: updates" 2 c.Churn.updates;
  check_int "leave 2: refills" 0 c.Churn.refills;
  check_bool "leave 2: row 0" (Churn.Overlay.row ov 0 = [| 1; -1 |]);
  check_bool "leave 2: row 1" (Churn.Overlay.row ov 1 = [| -1; 3 |]);
  check_bool "leave 2: label invalidated" (not (Churn.Overlay.valid_label ov 2));
  check_int "leave 2: backlog" 1 (Churn.Overlay.backlog ov);
  check_int "leave 2: stale invariant" 0 (Churn.Overlay.stale_entries ov);

  Churn.mark_leave st 3;
  let c = Churn.Overlay.leave ov 3 in
  (* Live referrer is row 1 only — row 2's owner is down, and its stale
     slot is deliberately left for the owner's own rejoin. *)
  check_int "leave 3: updates" 1 c.Churn.updates;
  check_bool "leave 3: row 1" (Churn.Overlay.row ov 1 = [| -1; -1 |]);
  check_bool "leave 3: dormant row 2 untouched" (Churn.Overlay.row ov 2 = [| 3; 0 |]);
  check_int "leave 3: backlog" 2 (Churn.Overlay.backlog ov);
  check_int "leave 3: stale invariant" 0 (Churn.Overlay.stale_entries ov);

  Churn.mark_join st 2;
  let c = Churn.Overlay.join ov 2 in
  (* Rejoin: own row drops the still-down 3 (1 update), re-adoption at the
     two pristine positions (2 updates), full re-label. *)
  check_int "join 2: updates" 3 c.Churn.updates;
  check_int "join 2: relabels" 12 c.Churn.relabels;
  check_bool "join 2: own row" (Churn.Overlay.row ov 2 = [| -1; 0 |]);
  check_bool "join 2: re-adopted in row 0" (Churn.Overlay.row ov 0 = [| 1; 2 |]);
  check_bool "join 2: re-adopted in row 1" (Churn.Overlay.row ov 1 = [| 2; -1 |]);
  check_bool "join 2: label valid again" (Churn.Overlay.valid_label ov 2);
  check_int "join 2: stale invariant" 0 (Churn.Overlay.stale_entries ov);

  Churn.mark_join st 3;
  let c = Churn.Overlay.join ov 3 in
  check_int "join 3: updates" 2 c.Churn.updates;
  check_int "join 3: relabels" 13 c.Churn.relabels;
  check_int "join 3: backlog drained" 0 (Churn.Overlay.backlog ov);
  for u = 0 to 3 do
    check_bool "everyone back: rows are pristine again"
      (Churn.Overlay.row ov u = rows.(u))
  done

let test_overlay_custom_substitute_refill_and_eviction () =
  (* With a ranked substitute the lost slot refills (counted), and the
     rejoin evicts the stand-in from its pristine position. *)
  let rows = [| [| 1; 2 |]; [| 0; 2 |]; [| 0; 1 |]; [| 0; 1 |] |] in
  let st = Churn.fresh_state 4 in
  let substitute ~u ~slot:_ ~exclude =
    let best = ref (-1) in
    for w = 3 downto 0 do
      if w <> u && Churn.is_live st w && not (exclude w) then best := w
    done;
    !best
  in
  let ov = Churn.Overlay.create ~substitute st rows ~relabel_cost:(fun _ -> 1) in
  Churn.mark_leave st 2;
  let c = Churn.Overlay.leave ov 2 in
  (* Rows 0 and 1 each lose member 2 and refill with 3 — the only live
     node outside the row. *)
  check_int "refill counted per repaired slot" 2 c.Churn.refills;
  check_int "one update per repaired slot" 2 c.Churn.updates;
  check_bool "row 0 refilled" (Churn.Overlay.row ov 0 = [| 1; 3 |]);
  check_bool "row 1 refilled" (Churn.Overlay.row ov 1 = [| 0; 3 |]);
  check_int "stale invariant" 0 (Churn.Overlay.stale_entries ov);
  Churn.mark_join st 2;
  ignore (Churn.Overlay.join ov 2);
  check_bool "rejoin evicts the stand-in (row 0)" (Churn.Overlay.row ov 0 = [| 1; 2 |]);
  check_bool "rejoin evicts the stand-in (row 1)" (Churn.Overlay.row ov 1 = [| 0; 2 |]);
  check_int "stale invariant after rejoin" 0 (Churn.Overlay.stale_entries ov)

let test_ring_repair_invariant_and_restore () =
  (* Drive a real schedule over Basic's rings: zero stale members after
     every event, and rejoining everybody restores the pristine rings. *)
  let sp = Lazy.force sp_fixture in
  let n = Ron_graph.Graph.size (Sp_metric.graph sp) in
  let b = Basic.build sp ~delta:0.25 in
  let s =
    Churn.Schedule.make ~seed:9191 ~n ~slots:120 ~join_rate:0.1 ~leave_rate:0.1 ()
  in
  let st = Churn.state_of_schedule s in
  let rr = Churn.Ring_repair.create st (Basic.substrate b) (Basic.rings_collection b) in
  check_bool "schedule has events" (Array.length (Churn.Schedule.events s) > 0);
  Array.iter
    (fun (e : Churn.Schedule.event) ->
      (match e.Churn.Schedule.kind with
      | Churn.Schedule.Leave ->
        Churn.mark_leave st e.Churn.Schedule.node;
        let c = Churn.Ring_repair.leave rr e.Churn.Schedule.node in
        check_bool "leave does work" (c.Churn.updates >= 0)
      | Churn.Schedule.Join ->
        Churn.mark_join st e.Churn.Schedule.node;
        ignore (Churn.Ring_repair.join rr e.Churn.Schedule.node));
      check_int "no live ring references a departed node" 0
        (Churn.Ring_repair.stale_members rr))
    (Churn.Schedule.events s);
  (* Bring every departed node back; the working copy must converge to the
     pristine collection exactly. *)
  for v = 0 to n - 1 do
    if not (Churn.is_live st v) then begin
      Churn.mark_join st v;
      ignore (Churn.Ring_repair.join rr v)
    end
  done;
  let pristine = Basic.rings_collection b and work = Churn.Ring_repair.rings rr in
  for u = 0 to n - 1 do
    check_bool "rings restored to pristine"
      (Ron_core.Rings.rings_of work u = Ron_core.Rings.rings_of pristine u)
  done

(* ------------------------------------------------ counters / rebuilds *)

let test_driver_counters_and_rebuilds_zero () =
  with_probes (fun () ->
      let joins0 = Counter.value Probe.churn_joins in
      let leaves0 = Counter.value Probe.churn_leaves in
      let rebuilds0 = Counter.value Probe.churn_rebuilds in
      let sp = Lazy.force sp_fixture in
      let n = Ron_graph.Graph.size (Sp_metric.graph sp) in
      let b = Basic.build sp ~delta:0.25 in
      let s =
        Churn.Schedule.make ~seed:9191 ~initial_down_fraction:0.05 ~n ~slots:120
          ~join_rate:0.1 ~leave_rate:0.1 ()
      in
      let st = Churn.state_of_schedule s in
      let rr = Churn.Ring_repair.create st (Basic.substrate b) (Basic.rings_collection b) in
      let summary =
        Churn.Driver.apply s st
          ~on_leave:(fun v -> Churn.Ring_repair.leave rr v)
          ~on_join:(fun v -> Churn.Ring_repair.join rr v)
          ()
      in
      check_int "join counter matches summary"
        summary.Churn.Driver.joins
        (Counter.value Probe.churn_joins - joins0);
      check_int "leave counter matches summary"
        summary.Churn.Driver.leaves
        (Counter.value Probe.churn_leaves - leaves0);
      check_bool "summary cost aggregates updates"
        (summary.Churn.Driver.cost.Churn.updates > 0);
      check_int "incremental repair never rebuilds" 0
        (Counter.value Probe.churn_rebuilds - rebuilds0))

(* ------------------------------------------- jobs-invariant routing *)

let test_churn_routes_jobs_invariant () =
  (* The schedule applies sequentially; routing the surviving pairs under
     the frozen live set must then be identical at jobs 1 and 4. *)
  let sp = Lazy.force sp_fixture in
  let n = Ron_graph.Graph.size (Sp_metric.graph sp) in
  let b = Basic.build sp ~delta:0.25 in
  let run ~jobs =
    let s =
      Churn.Schedule.make ~seed:9191 ~n ~slots:120 ~join_rate:0.1 ~leave_rate:0.1 ()
    in
    let st = Churn.state_of_schedule s in
    let rr = Churn.Ring_repair.create st (Basic.substrate b) (Basic.rings_collection b) in
    let _ =
      Churn.Driver.apply s st
        ~on_leave:(fun v -> Churn.Ring_repair.leave rr v)
        ~on_join:(fun v -> Churn.Ring_repair.join rr v)
        ()
    in
    let pairs =
      sample_pairs (Rng.create 31) ~n ~count:300
      |> List.filter (fun (u, v) -> Churn.is_live st u && Churn.is_live st v)
      |> Array.of_list
    in
    let w = Churn.wrapper st in
    Pool.init ~jobs (Array.length pairs) (fun i ->
        let u, v = pairs.(i) in
        Basic.route_wrapped w b ~src:u ~dst:v)
  in
  let r1 = run ~jobs:1 and r4 = run ~jobs:4 in
  check_bool "jobs=1 equals jobs=4" (r1 = r4);
  check_bool "rerun equals first run" (run ~jobs:4 = r4);
  let d = Array.fold_left (fun a r -> if r.Scheme.delivered then a + 1 else a) 0 r1 in
  check_bool
    (Printf.sprintf "most packets still delivered (%d/%d)" d (Array.length r1))
    (2 * d > Array.length r1)

let () =
  Alcotest.run "ron_churn"
    [
      ( "schedule",
        [
          Alcotest.test_case "make is deterministic" `Quick test_schedule_deterministic;
          Alcotest.test_case "make validates parameters" `Quick test_schedule_validation;
          Alcotest.test_case "rejoin model and live floor" `Quick test_schedule_rejoin_model;
          Alcotest.test_case "null schedule and state flips" `Quick
            test_schedule_null_and_state;
        ] );
      ( "rate zero",
        [
          Alcotest.test_case "wrapper is identity" `Quick test_rate_zero_wrapper_is_identity;
          Alcotest.test_case "graph schemes byte-identical" `Quick
            test_rate_zero_identical_graph_schemes;
          Alcotest.test_case "two-mode byte-identical" `Quick test_rate_zero_identical_two_mode;
          Alcotest.test_case "meridian byte-identical" `Quick test_rate_zero_identical_meridian;
          Alcotest.test_case "landmark overlay untouched" `Quick
            test_rate_zero_identical_landmark_overlay;
        ] );
      ( "repair",
        [
          Alcotest.test_case "overlay hand-computed trace" `Quick test_overlay_hand_trace;
          Alcotest.test_case "ranked substitute refills and is evicted" `Quick
            test_overlay_custom_substitute_refill_and_eviction;
          Alcotest.test_case "ring repair invariant and restore" `Quick
            test_ring_repair_invariant_and_restore;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "driver counters, rebuilds stay 0" `Quick
            test_driver_counters_and_rebuilds_zero;
          Alcotest.test_case "churn routes jobs-invariant" `Quick
            test_churn_routes_jobs_invariant;
        ] );
    ]
