(* Tests for ron_routing: Theorem 2.1 (Basic), Theorem 4.1 (Labelled), the
   metric variant (On_metric, Section 4.1), and the stretch-1 baseline. *)

module Rng = Ron_util.Rng
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Graph = Ron_graph.Graph
module Graph_gen = Ron_graph.Graph_gen
module Sp_metric = Ron_graph.Sp_metric
module Scheme = Ron_routing.Scheme
module Basic = Ron_routing.Basic
module Labelled = Ron_routing.Labelled
module On_metric = Ron_routing.On_metric
module Full_table = Ron_routing.Full_table

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)

let grid = lazy (Sp_metric.create (Graph_gen.grid 7 7))
let geo = lazy (Sp_metric.create (Graph_gen.random_geometric (Rng.create 3) ~n:70 ~radius:0.18))
let expg = lazy (Sp_metric.create (Graph_gen.exponential_line_graph 18))

let basic_grid = lazy (Basic.build (Lazy.force grid) ~delta:0.25)
let basic_geo = lazy (Basic.build (Lazy.force geo) ~delta:0.25)
let basic_expg = lazy (Basic.build (Lazy.force expg) ~delta:0.25)

(* ------------------------------------------------------------ simulator *)

let test_simulator_basics () =
  (* A 3-node line walked by a hand-rolled scheme. *)
  let dist a b = Float.abs (float_of_int (a - b)) in
  let step u target = if u = target then Scheme.Deliver else Scheme.Forward (u + 1, target) in
  let r =
    Scheme.simulate ~dist ~step ~header_bits:(fun _ -> 5) ~src:0 ~header:2 ~max_hops:10 ()
  in
  check_bool "delivered" r.Scheme.delivered;
  check_int "hops" 2 r.Scheme.hops;
  Alcotest.(check (float 1e-9)) "length" 2.0 r.Scheme.length;
  Alcotest.(check (list int)) "path" [ 0; 1; 2 ] r.Scheme.path;
  check_int "header bits" 5 r.Scheme.max_header_bits

let test_simulator_max_hops () =
  (* An ever-advancing walk (no state ever repeats) so the only way out is
     the hop budget — cycle detection must not fire. *)
  let r =
    Scheme.simulate ~dist:(fun _ _ -> 1.0)
      ~step:(fun u h -> Scheme.Forward (u + 1, h))
      ~header_bits:(fun _ -> 1) ~src:0 ~header:99 ~max_hops:5 ()
  in
  check_bool "not delivered" (not r.Scheme.delivered);
  check_bool "truncated outcome" (r.Scheme.outcome = Scheme.Truncated);
  check_int "capped" 5 r.Scheme.hops

let test_simulator_two_cycle_detected () =
  (* A 2-cycle 0 -> 1 -> 0 with a constant header: before the fix this spun
     to the hop budget and misreported Truncated. Brent's detection must
     flag it as Cycled within O(cycle length) hops, far below the budget. *)
  let r =
    Scheme.simulate ~dist:(fun _ _ -> 1.0)
      ~step:(fun u h -> Scheme.Forward ((if u = 0 then 1 else 0), h))
      ~header_bits:(fun _ -> 1) ~src:0 ~header:99 ~max_hops:10_000 ()
  in
  check_bool "not delivered" (not r.Scheme.delivered);
  check_bool "cycled outcome" (r.Scheme.outcome = Scheme.Cycled);
  check_bool "detected in O(cycle length) hops" (r.Scheme.hops <= 8)

let test_simulator_longer_cycle_detected () =
  (* A tail of 3 hops into a 5-cycle; detection cost must stay proportional
     to tail + cycle length, not the budget. *)
  let step u h =
    if u < 3 then Scheme.Forward (u + 1, h)
    else Scheme.Forward ((if u = 7 then 3 else u + 1), h)
  in
  let r =
    Scheme.simulate ~dist:(fun _ _ -> 1.0) ~step ~header_bits:(fun _ -> 1) ~src:0 ~header:()
      ~max_hops:10_000 ()
  in
  check_bool "cycled outcome" (r.Scheme.outcome = Scheme.Cycled);
  check_bool "detected promptly" (r.Scheme.hops <= 40)

let test_simulator_header_rewrite_not_cycled () =
  (* Revisiting a node with a *different* header is not a cycle: the header
     counts down to delivery. *)
  let step u h =
    if h = 0 then Scheme.Deliver
    else Scheme.Forward ((if u = 0 then 1 else 0), h - 1)
  in
  let r =
    Scheme.simulate ~dist:(fun _ _ -> 1.0) ~step ~header_bits:(fun _ -> 4) ~src:0 ~header:9
      ~max_hops:100 ()
  in
  check_bool "delivered" r.Scheme.delivered;
  check_int "hops" 9 r.Scheme.hops

let test_simulator_no_detect_opt_out () =
  (* ~detect_cycles:false restores the old spin-to-budget behaviour (needed
     when the step function is not state-determined, e.g. under faults). *)
  let r =
    Scheme.simulate ~detect_cycles:false ~dist:(fun _ _ -> 1.0)
      ~step:(fun u h -> Scheme.Forward ((if u = 0 then 1 else 0), h))
      ~header_bits:(fun _ -> 1) ~src:0 ~header:99 ~max_hops:17 ()
  in
  check_bool "truncated outcome" (r.Scheme.outcome = Scheme.Truncated);
  check_int "ran to budget" 17 r.Scheme.hops

let test_simulator_self_forward_outcome () =
  let r =
    Scheme.simulate ~dist:(fun _ _ -> 1.0)
      ~step:(fun u h -> Scheme.Forward (u, h))
      ~header_bits:(fun _ -> 1) ~src:0 ~header:() ~max_hops:5 ()
  in
  check_bool "not delivered" (not r.Scheme.delivered);
  check_bool "self-forward outcome" (r.Scheme.outcome = Scheme.Self_forward);
  check_int "no hops taken" 0 r.Scheme.hops;
  Alcotest.(check (list int)) "path is just the source" [ 0 ] r.Scheme.path

let test_stretch_requires_delivery () =
  let r =
    {
      Scheme.delivered = false;
      outcome = Scheme.Truncated;
      hops = 1;
      length = 1.0;
      path = [ 0 ];
      max_header_bits = 0;
    }
  in
  Alcotest.check_raises "undelivered stretch"
    (Invalid_argument "Scheme.stretch: packet not delivered") (fun () ->
      ignore (Scheme.stretch r 1.0))

let test_stretch_zero_distance () =
  (* A delivered-but-wandering packet between coincident points used to read
     as perfect stretch 1.0; it must read as infinite stretch. *)
  let delivered length hops =
    {
      Scheme.delivered = true;
      outcome = Scheme.Delivered;
      hops;
      length;
      path = [ 0 ];
      max_header_bits = 0;
    }
  in
  Alcotest.(check (float 0.0)) "wandering to coincident point" infinity
    (Scheme.stretch (delivered 3.0 2) 0.0);
  Alcotest.(check (float 0.0)) "zero-length path to coincident point" 1.0
    (Scheme.stretch (delivered 0.0 0) 0.0);
  Alcotest.(check (float 1e-9)) "normal case unchanged" 1.5
    (Scheme.stretch (delivered 3.0 2) 2.0)

(* ----------------------------------------------------- Basic (Thm 2.1) *)

let all_pairs_basic name sp scheme delta =
  let n = Graph.size (Sp_metric.graph sp) in
  let bound = (1.0 +. delta) /. (1.0 -. delta) in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let r = Basic.route scheme ~src:u ~dst:v in
        check_bool (name ^ ": delivered") r.Scheme.delivered;
        let s = Scheme.stretch r (Sp_metric.dist sp u v) in
        check_bool (Printf.sprintf "%s: stretch %.3f within %.3f" name s bound) (s <= bound +. 1e-9)
      end
    done
  done

let test_basic_grid () = all_pairs_basic "grid" (Lazy.force grid) (Lazy.force basic_grid) 0.25
let test_basic_geo () = all_pairs_basic "geo" (Lazy.force geo) (Lazy.force basic_geo) 0.25
let test_basic_expg () = all_pairs_basic "expg" (Lazy.force expg) (Lazy.force basic_expg) 0.25

let test_basic_path_follows_graph_edges () =
  let sp = Lazy.force grid in
  let g = Sp_metric.graph sp in
  let scheme = Lazy.force basic_grid in
  let r = Basic.route scheme ~src:0 ~dst:48 in
  let rec pairs = function
    | a :: (b :: _ as rest) ->
      check_bool "edge exists"
        (Array.exists (fun e -> e.Graph.dst = b) (Graph.out_edges g a));
      pairs rest
    | _ -> ()
  in
  pairs r.Scheme.path

let test_basic_zooming_proximity () =
  (* f_tj lies within Delta/2^j of t. *)
  let sp = Lazy.force geo in
  let scheme = Lazy.force basic_geo in
  let idx = Indexed.create (Sp_metric.metric sp) in
  let diam = Indexed.diameter idx in
  let n = Indexed.size idx in
  for t = 0 to n - 1 do
    let f = Basic.zooming scheme t in
    Array.iteri
      (fun j fj ->
        check_bool "zoom proximity"
          (Indexed.dist idx t fj <= (diam /. Float.of_int (1 lsl j)) +. 1e-9))
      f
  done

let test_basic_ring_sizes_bounded () =
  (* K <= (16/delta)^alpha; grids have alpha <= 3. *)
  let scheme = Lazy.force basic_grid in
  check_bool "K bounded" (Basic.max_ring_size scheme <= int_of_float ((16.0 /. 0.25) ** 3.0))

let test_basic_bits_positive () =
  let scheme = Lazy.force basic_grid in
  Array.iter (fun b -> check_bool "table bits > 0" (b > 0)) (Basic.table_bits scheme);
  Array.iter (fun b -> check_bool "label bits > 0" (b > 0)) (Basic.label_bits scheme);
  check_bool "header bits > 0" (Basic.header_bits scheme > 0);
  (* Dense accounting dominates sparse accounting. *)
  let sparse = Basic.table_bits scheme and dense = Basic.table_bits_dense scheme in
  Array.iteri (fun i s -> check_bool "dense >= sparse" (dense.(i) >= s)) sparse

let test_basic_delta_validation () =
  Alcotest.check_raises "delta" (Invalid_argument "Structure.build: delta must be in (0, 1/4]")
    (fun () -> ignore (Basic.build (Lazy.force grid) ~delta:0.3))

let test_basic_labels_compact () =
  (* Labels are O(log Delta * log K) bits — far below n for the geo graph. *)
  let scheme = Lazy.force basic_geo in
  let lb = Basic.label_bits scheme in
  Array.iter (fun b -> check_bool "label compact" (b < 70 * 8)) lb

(* -------------------------------------------------- Labelled (Thm 4.1) *)

let labelled_grid = lazy (Labelled.build (Lazy.force grid) ~delta:0.25)

let test_labelled_all_pairs () =
  let sp = Lazy.force grid in
  let scheme = Lazy.force labelled_grid in
  let n = Graph.size (Sp_metric.graph sp) in
  (* Stretch 1 + O(delta): each intermediate-target round contributes a
     (1 + 3/2 delta) factor on a geometric series; 1 + 4*delta is safe. *)
  let bound = 1.0 +. (4.0 *. 0.25) in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let r = Labelled.route scheme ~src:u ~dst:v in
        check_bool "delivered" r.Scheme.delivered;
        check_bool "stretch" (Scheme.stretch r (Sp_metric.dist sp u v) <= bound +. 1e-9)
      end
    done
  done

let test_labelled_header_independent_of_target () =
  let scheme = Lazy.force labelled_grid in
  let r1 = Labelled.route scheme ~src:0 ~dst:48 in
  check_bool "header bounded by published max"
    (r1.Scheme.max_header_bits <= Labelled.header_bits scheme)

let test_labelled_degree_positive () =
  let scheme = Lazy.force labelled_grid in
  check_bool "degree" (Labelled.out_degree scheme >= 1);
  check_bool "neighbors of 0 nonempty" (Array.length (Labelled.neighbors scheme 0) >= 1)

let test_labelled_delta_validation () =
  Alcotest.check_raises "delta" (Invalid_argument "Labelled.build: delta must be in (0, 2/3)")
    (fun () -> ignore (Labelled.build (Lazy.force grid) ~delta:0.7))

(* ------------------------------------------------- On_metric (Sec 4.1) *)

let test_on_metric_all_pairs () =
  List.iter
    (fun (name, m, delta) ->
      let idx = Indexed.create m in
      let scheme = On_metric.build idx ~delta in
      let n = Indexed.size idx in
      let bound = (1.0 +. delta) /. (1.0 -. delta) in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then begin
            let r = On_metric.route scheme ~src:u ~dst:v in
            check_bool (name ^ ": delivered") r.Scheme.delivered;
            check_bool (name ^ ": stretch")
              (Scheme.stretch r (Indexed.dist idx u v) <= bound +. 1e-9);
            (* Hop count is at most the number of scales: each hop zooms at
               least one scale (in fact many). *)
            check_bool (name ^ ": few hops") (r.Scheme.hops <= On_metric.scales scheme)
          end
        done
      done)
    [
      ("grid", Generators.grid2d 7 7, 0.25);
      ("expline", Generators.exponential_line 20, 0.25);
      ("cloud", Generators.random_cloud (Rng.create 11) ~n:60 ~dim:2, 0.2);
    ]

let test_on_metric_degree_vs_table () =
  let idx = Indexed.create (Generators.exponential_line 24) in
  let scheme = On_metric.build idx ~delta:0.25 in
  check_bool "degree <= n" (On_metric.out_degree scheme <= 24);
  check_bool "mean <= max" (On_metric.mean_out_degree scheme <= float_of_int (On_metric.out_degree scheme));
  Array.iter (fun b -> check_bool "table bits > 0" (b > 0)) (On_metric.table_bits scheme)

(* ------------------------------------------------- Two_mode (Thm 4.2) *)

module Two_mode = Ron_routing.Two_mode

let test_two_mode_all_pairs () =
  let idx = Indexed.create (Generators.random_cloud (Rng.create 7) ~n:70 ~dim:2) in
  let tm = Two_mode.build idx ~delta:0.125 in
  let n = Indexed.size idx in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let r = Two_mode.route tm ~src:u ~dst:v in
        check_bool "delivered" r.Scheme.delivered;
        (* M1 progress factor is m1_threshold * 3/2 per jump; with the
           default 1/3 the geometric series stays below 1 + 2. *)
        check_bool "stretch bounded" (Scheme.stretch r (Indexed.dist idx u v) <= 3.0)
      end
    done
  done

let test_two_mode_forced_m2 () =
  (* A strict M1 threshold forces the packing-ball directories to carry
     packets; delivery must be maintained and M2 must actually fire. *)
  let idx =
    Indexed.create
      (Generators.exponential_clusters (Rng.create 9) ~clusters:10 ~per_cluster:6 ~base:64.0)
  in
  let tm = Two_mode.build ~m1_threshold:0.01 idx ~delta:0.125 in
  Two_mode.reset_counters tm;
  let n = Indexed.size idx in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then check_bool "delivered" (Two_mode.route tm ~src:u ~dst:v).Scheme.delivered
    done
  done;
  check_bool "M2 exercised" (Two_mode.mode2_switches tm > 0)

let test_two_mode_bits_and_degree () =
  let idx = Indexed.create (Generators.exponential_line 20) in
  let tm = Two_mode.build idx ~delta:0.125 in
  Array.iter (fun b -> check_bool "m1 bits > 0" (b > 0)) (Two_mode.table_bits_m1 tm);
  Array.iter (fun b -> check_bool "m2 bits > 0" (b > 0)) (Two_mode.table_bits_m2 tm);
  check_bool "m2 far below m1 at high aspect ratio"
    (Array.fold_left max 0 (Two_mode.table_bits_m2 tm)
    < Array.fold_left max 0 (Two_mode.table_bits_m1 tm));
  check_bool "header positive" (Two_mode.header_bits tm > 0);
  check_bool "degree positive" (Two_mode.out_degree tm > 0)

let test_two_mode_validation () =
  let idx = Indexed.create (Generators.grid2d 4 4) in
  Alcotest.check_raises "delta" (Invalid_argument "Two_mode.build: delta must be in (0, 1/8]")
    (fun () -> ignore (Two_mode.build idx ~delta:0.2));
  Alcotest.check_raises "threshold"
    (Invalid_argument "Two_mode.build: m1_threshold must be in (0, 1/2)") (fun () ->
      ignore (Two_mode.build ~m1_threshold:0.6 idx ~delta:0.125))

(* ----------------------------------------------------------- Full_table *)

let test_full_table_stretch_one () =
  let sp = Lazy.force geo in
  let ft = Full_table.build sp in
  let n = Graph.size (Sp_metric.graph sp) in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if u <> v then begin
        let r = Full_table.route ft ~src:u ~dst:v in
        check_bool "delivered" r.Scheme.delivered;
        check_bool "stretch exactly 1"
          (Float.abs (Scheme.stretch r (Sp_metric.dist sp u v) -. 1.0) < 1e-9)
      end
    done
  done

let test_full_table_bits_linear () =
  let sp = Lazy.force grid in
  let ft = Full_table.build sp in
  let bits = Full_table.table_bits ft in
  check_bool "Omega(n)" (bits.(0) >= 48 (* (n-1) * >=1 bit *));
  check_int "header is an id" 6 (Full_table.header_bits ft)

(* Compact-vs-trivial contrast: on the geometric graph the Theorem 2.1
   labels are much smaller than n log n routing-table rows. *)
let test_compactness_contrast () =
  let sp = Lazy.force geo in
  let basic = Lazy.force basic_geo in
  let ft = Full_table.build sp in
  let b_label = Array.fold_left max 0 (Basic.label_bits basic) in
  let ft_table = (Full_table.table_bits ft).(0) in
  check_bool "labels are sub-table-sized" (b_label < ft_table)

(* --------------------------------------------------------------- QCheck *)

let prop_basic_random_geometric =
  QCheck.Test.make ~name:"Thm 2.1 delivers with bounded stretch on random geometric graphs"
    ~count:8
    QCheck.(int_range 20 60)
    (fun n ->
      let g = Graph_gen.random_geometric (Rng.create (n * 7)) ~n ~radius:0.25 in
      let sp = Sp_metric.create g in
      let scheme = Basic.build sp ~delta:0.25 in
      let rng = Rng.create n in
      let ok = ref true in
      for _ = 1 to 50 do
        let u = Rng.int rng n and v = Rng.int rng n in
        if u <> v then begin
          let r = Basic.route scheme ~src:u ~dst:v in
          if not r.Scheme.delivered then ok := false
          else if Scheme.stretch r (Sp_metric.dist sp u v) > (1.25 /. 0.75) +. 1e-9 then ok := false
        end
      done;
      !ok)

let prop_on_metric_random_clouds =
  QCheck.Test.make ~name:"metric scheme delivers with bounded stretch on clouds" ~count:8
    QCheck.(pair (int_range 15 50) (int_range 1 3))
    (fun (n, dim) ->
      let idx = Indexed.create (Generators.random_cloud (Rng.create (n + dim)) ~n ~dim) in
      let scheme = On_metric.build idx ~delta:0.25 in
      let ok = ref true in
      for u = 0 to n - 1 do
        for v = 0 to n - 1 do
          if u <> v then begin
            let r = On_metric.route scheme ~src:u ~dst:v in
            if (not r.Scheme.delivered)
               || Scheme.stretch r (Indexed.dist idx u v) > (1.25 /. 0.75) +. 1e-9
            then ok := false
          end
        done
      done;
      !ok)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ron_routing"
    [
      ( "simulator",
        [
          Alcotest.test_case "basics" `Quick test_simulator_basics;
          Alcotest.test_case "max hops" `Quick test_simulator_max_hops;
          Alcotest.test_case "two-cycle detected" `Quick test_simulator_two_cycle_detected;
          Alcotest.test_case "longer cycle detected" `Quick test_simulator_longer_cycle_detected;
          Alcotest.test_case "header rewrite not cycled" `Quick
            test_simulator_header_rewrite_not_cycled;
          Alcotest.test_case "cycle detection opt-out" `Quick test_simulator_no_detect_opt_out;
          Alcotest.test_case "self forward outcome" `Quick test_simulator_self_forward_outcome;
          Alcotest.test_case "stretch requires delivery" `Quick test_stretch_requires_delivery;
          Alcotest.test_case "stretch at zero distance" `Quick test_stretch_zero_distance;
        ] );
      ( "basic-thm21",
        [
          Alcotest.test_case "all pairs on grid" `Quick test_basic_grid;
          Alcotest.test_case "all pairs on geometric" `Slow test_basic_geo;
          Alcotest.test_case "all pairs on exponential-weight graph" `Quick test_basic_expg;
          Alcotest.test_case "path follows graph edges" `Quick test_basic_path_follows_graph_edges;
          Alcotest.test_case "zooming proximity" `Quick test_basic_zooming_proximity;
          Alcotest.test_case "ring sizes bounded" `Quick test_basic_ring_sizes_bounded;
          Alcotest.test_case "bit accounting" `Quick test_basic_bits_positive;
          Alcotest.test_case "delta validation" `Quick test_basic_delta_validation;
          Alcotest.test_case "labels compact" `Quick test_basic_labels_compact;
        ] );
      ( "labelled-thm41",
        [
          Alcotest.test_case "all pairs" `Slow test_labelled_all_pairs;
          Alcotest.test_case "header bounded" `Quick test_labelled_header_independent_of_target;
          Alcotest.test_case "degree" `Quick test_labelled_degree_positive;
          Alcotest.test_case "delta validation" `Quick test_labelled_delta_validation;
        ] );
      ( "on-metric",
        [
          Alcotest.test_case "all pairs" `Quick test_on_metric_all_pairs;
          Alcotest.test_case "degree and table" `Quick test_on_metric_degree_vs_table;
        ] );
      ( "two-mode-thm42",
        [
          Alcotest.test_case "all pairs" `Slow test_two_mode_all_pairs;
          Alcotest.test_case "forced M2" `Quick test_two_mode_forced_m2;
          Alcotest.test_case "bits and degree" `Quick test_two_mode_bits_and_degree;
          Alcotest.test_case "validation" `Quick test_two_mode_validation;
        ] );
      ( "full-table",
        [
          Alcotest.test_case "stretch 1" `Quick test_full_table_stretch_one;
          Alcotest.test_case "bits linear" `Quick test_full_table_bits_linear;
          Alcotest.test_case "compactness contrast" `Quick test_compactness_contrast;
        ] );
      ("properties", [ qt prop_basic_random_geometric; qt prop_on_metric_random_clouds ]);
    ]
