(* Tests for the ron_util library: Rng, Bits, Qfloat, Stats. *)

module Rng = Ron_util.Rng
module Bits = Ron_util.Bits
module Qfloat = Ron_util.Qfloat
module Stats = Ron_util.Stats

let check_bool msg b = Alcotest.(check bool) msg true b
let check_int = Alcotest.(check int)
let check_float msg = Alcotest.(check (float 1e-9)) msg

(* ------------------------------------------------------------------ Rng *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  check_bool "different seeds differ" (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let x = Rng.int rng 17 in
    check_bool "in range" (x >= 0 && x < 17)
  done

let test_rng_int_covers () =
  let rng = Rng.create 11 in
  let seen = Array.make 8 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 8) <- true
  done;
  check_bool "all residues hit" (Array.for_all Fun.id seen)

let test_rng_float_range () =
  let rng = Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Rng.float rng 2.5 in
    check_bool "in range" (x >= 0.0 && x < 2.5)
  done

let test_rng_float_mean () =
  let rng = Rng.create 5 in
  let n = 50_000 in
  let acc = ref 0.0 in
  for _ = 1 to n do
    acc := !acc +. Rng.float rng 1.0
  done;
  let m = !acc /. float_of_int n in
  check_bool "mean near 1/2" (Float.abs (m -. 0.5) < 0.01)

let test_rng_split_independent () =
  let parent = Rng.create 9 in
  let child = Rng.split parent in
  (* Consuming the child must not change the parent's future stream relative
     to a parent that split and discarded the child. *)
  let parent2 = Rng.create 9 in
  let _ = Rng.split parent2 in
  for _ = 1 to 50 do
    ignore (Rng.bits64 child)
  done;
  check_bool "parent unaffected by child use" (Rng.bits64 parent = Rng.bits64 parent2)

let test_rng_copy () =
  let a = Rng.create 123 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check_bool "copy replays" (Rng.bits64 a = Rng.bits64 b)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 77 in
  let a = Array.init 100 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check_bool "is permutation" (sorted = Array.init 100 Fun.id)

let test_rng_gaussian_moments () =
  let rng = Rng.create 13 in
  let n = 50_000 in
  let sum = ref 0.0 and sumsq = ref 0.0 in
  for _ = 1 to n do
    let x = Rng.gaussian rng in
    sum := !sum +. x;
    sumsq := !sumsq +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!sumsq /. float_of_int n) -. (mean *. mean) in
  check_bool "mean ~ 0" (Float.abs mean < 0.02);
  check_bool "var ~ 1" (Float.abs (var -. 1.0) < 0.05)

let test_weighted_index () =
  let rng = Rng.create 21 in
  (* Weights 1, 2, 1 -> cumulative 1, 3, 4. *)
  let cum = [| 1.0; 3.0; 4.0 |] in
  let counts = Array.make 3 0 in
  let n = 40_000 in
  for _ = 1 to n do
    let i = Rng.weighted_index rng cum in
    counts.(i) <- counts.(i) + 1
  done;
  let f i = float_of_int counts.(i) /. float_of_int n in
  check_bool "w0 ~ 1/4" (Float.abs (f 0 -. 0.25) < 0.02);
  check_bool "w1 ~ 1/2" (Float.abs (f 1 -. 0.5) < 0.02);
  check_bool "w2 ~ 1/4" (Float.abs (f 2 -. 0.25) < 0.02)

let test_weighted_index_zero_weight () =
  let rng = Rng.create 22 in
  (* Middle weight zero: cumulative 1, 1, 2. Index 1 must never be drawn. *)
  let cum = [| 1.0; 1.0; 2.0 |] in
  for _ = 1 to 1000 do
    check_bool "zero weight never sampled" (Rng.weighted_index rng cum <> 1)
  done

let test_rng_invalid_args () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "int 0" (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0));
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng [||]))

(* ----------------------------------------------------------------- Bits *)

let test_bits_values () =
  check_int "bits_for 1" 0 (Bits.bits_for 1);
  check_int "bits_for 2" 1 (Bits.bits_for 2);
  check_int "bits_for 3" 2 (Bits.bits_for 3);
  check_int "bits_for 1024" 10 (Bits.bits_for 1024);
  check_int "bits_for 1025" 11 (Bits.bits_for 1025);
  check_int "index_bits 1" 1 (Bits.index_bits 1);
  check_int "ilog2_floor 1" 0 (Bits.ilog2_floor 1);
  check_int "ilog2_floor 7" 2 (Bits.ilog2_floor 7);
  check_int "ilog2_ceil 7" 3 (Bits.ilog2_ceil 7);
  check_int "ilog2_ceil 8" 3 (Bits.ilog2_ceil 8)

let prop_bits_consistent =
  QCheck.Test.make ~name:"bits_for names k values" ~count:500
    QCheck.(int_range 2 1_000_000)
    (fun k ->
      let b = Bits.bits_for k in
      (1 lsl b) >= k && (1 lsl (b - 1)) < k)

(* --------------------------------------------------------------- Qfloat *)

let test_qfloat_zero () =
  let c = Qfloat.codec ~mantissa_bits:4 ~max_exponent:10 in
  check_float "zero roundtrip" 0.0 (Qfloat.quantize c 0.0)

let test_qfloat_exact_powers () =
  let c = Qfloat.codec ~mantissa_bits:6 ~max_exponent:20 in
  List.iter
    (fun e ->
      let x = Float.of_int (1 lsl e) in
      check_float (Printf.sprintf "2^%d exact" e) x (Qfloat.quantize c x))
    [ 0; 1; 5; 13; 20 ]

let test_qfloat_bits_positive () =
  let c = Qfloat.codec_for ~delta:0.25 ~aspect_ratio:1024.0 in
  check_bool "bits positive" (Qfloat.bits c > 0)

let prop_qfloat_upper_bound =
  QCheck.Test.make ~name:"quantize never contracts" ~count:2000
    QCheck.(float_range 1.0 1_000_000.0)
    (fun x ->
      let c = Qfloat.codec ~mantissa_bits:5 ~max_exponent:40 in
      Qfloat.quantize c x >= x)

let prop_qfloat_relative_error =
  QCheck.Test.make ~name:"quantize relative error bounded" ~count:2000
    QCheck.(float_range 1.0 1_000_000.0)
    (fun x ->
      let c = Qfloat.codec ~mantissa_bits:5 ~max_exponent:40 in
      Qfloat.quantize c x <= x *. (1.0 +. Qfloat.relative_error_bound c) *. (1.0 +. 1e-12))

let prop_qfloat_monotone =
  QCheck.Test.make ~name:"quantize monotone" ~count:1000
    QCheck.(pair (float_range 1.0 100_000.0) (float_range 1.0 100_000.0))
    (fun (a, b) ->
      let c = Qfloat.codec ~mantissa_bits:4 ~max_exponent:30 in
      let lo = Float.min a b and hi = Float.max a b in
      Qfloat.quantize c lo <= Qfloat.quantize c hi)

let test_qfloat_out_of_range () =
  let c = Qfloat.codec ~mantissa_bits:4 ~max_exponent:3 in
  Alcotest.check_raises "overflow rejected"
    (Invalid_argument "Qfloat.encode: value out of range") (fun () ->
      ignore (Qfloat.encode c 100.0));
  Alcotest.check_raises "negative rejected" (Invalid_argument "Qfloat.encode: bad value")
    (fun () -> ignore (Qfloat.encode c (-1.0)))

let test_qfloat_codec_for_range () =
  (* codec_for must accept distances up to 2 * Delta (sums of two). *)
  let c = Qfloat.codec_for ~delta:0.5 ~aspect_ratio:1000.0 in
  let x = 1999.0 in
  check_bool "2*Delta encodable" (Qfloat.quantize c x >= x)

(* ---------------------------------------------------------------- Stats *)

let test_qfloat_sub_one_rounds_up () =
  (* Normalized metrics never store distances in (0,1); the codec still must
     handle them safely by rounding up to 1 (non-contracting). *)
  let c = Qfloat.codec ~mantissa_bits:4 ~max_exponent:8 in
  Alcotest.(check (float 1e-9)) "rounds to 1" 1.0 (Qfloat.quantize c 0.3)

let test_weighted_index_single () =
  let rng = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int) "single bucket" 0 (Rng.weighted_index rng [| 2.5 |])
  done

let test_stats_of_ints () =
  Alcotest.(check (float 1e-9)) "of_ints mean" 2.0 (Stats.mean (Stats.of_ints [| 1; 2; 3 |]))

let test_stats_empty () =
  check_bool "empty mean is nan" (Float.is_nan (Stats.mean [||]));
  check_bool "empty percentile is nan" (Float.is_nan (Stats.percentile [||] 50.0));
  check_bool "empty minimum is nan" (Float.is_nan (Stats.minimum [||]));
  check_bool "empty maximum is nan" (Float.is_nan (Stats.maximum [||]))

let test_stats_empty_summary () =
  let s = Stats.summarize [||] in
  check_int "count" 0 s.Stats.count;
  check_bool "mean nan" (Float.is_nan s.Stats.mean);
  check_bool "stddev nan" (Float.is_nan s.Stats.stddev);
  check_bool "min nan" (Float.is_nan s.Stats.min);
  check_bool "p50 nan" (Float.is_nan s.Stats.p50);
  check_bool "p90 nan" (Float.is_nan s.Stats.p90);
  check_bool "p99 nan" (Float.is_nan s.Stats.p99);
  check_bool "max nan" (Float.is_nan s.Stats.max)

let test_stats_basic () =
  let xs = [| 1.0; 2.0; 3.0; 4.0 |] in
  check_float "mean" 2.5 (Stats.mean xs);
  check_float "min" 1.0 (Stats.minimum xs);
  check_float "max" 4.0 (Stats.maximum xs);
  check_float "median" 2.0 (Stats.median xs);
  check_float "p100" 4.0 (Stats.percentile xs 100.0)

let test_stats_stddev () =
  let xs = [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |] in
  check_float "stddev" 2.0 (Stats.stddev xs)

let test_stats_summary () =
  let s = Stats.summarize (Array.init 100 (fun i -> float_of_int (i + 1))) in
  check_int "count" 100 s.Stats.count;
  check_float "p50" 50.0 s.Stats.p50;
  check_float "p90" 90.0 s.Stats.p90;
  check_float "p99" 99.0 s.Stats.p99

(* ----------------------------------------------------------- bench keys *)

module Bench_keys = Ron_util.Bench_keys

let test_bench_keys_classify () =
  let dir = function
    | Bench_keys.Throughput -> "throughput"
    | Bench_keys.Timing -> "timing"
    | Bench_keys.Deterministic -> "det"
  in
  let check key expect = Alcotest.(check string) key expect (dir (Bench_keys.classify key)) in
  check "qps" "throughput";
  check "warm_qps" "throughput";
  check "routes_per_s" "throughput";
  (* The throughput rule must win over the timing "_s" suffix rule. *)
  check "queries_per_s" "throughput";
  check "freeze_s" "timing";
  check "snapshot_load_s" "timing";
  check "latency_p999_ns" "timing";
  check "ns_total" "det";  (* "_ns" must be a real infix, not a prefix *)
  check "stretch_max" "det";
  check "qps_note" "det";  (* "qps" only counts as a suffix or the whole key *)
  check "n" "det";
  check "s" "det";
  (* The churn bench keys are seeded-workload outputs: all deterministic. *)
  check "repair_updates_per_event" "det";
  check "stretch_inflation" "det";
  check "churn_stale_hits" "det";
  check "delivery_rate" "det";
  check "stale_after_repair" "det"

let test_bench_keys_verdict () =
  let name = function
    | Bench_keys.Same -> "same"
    | Bench_keys.Better -> "better"
    | Bench_keys.Worse -> "worse"
    | Bench_keys.Changed -> "changed"
  in
  let v dir ~base ~next =
    Bench_keys.verdict dir ~threshold:0.5 ~det_threshold:1e-9 ~base ~next
  in
  let check msg dir ~base ~next expect_outcome expect_delta =
    let o, d = v dir ~base ~next in
    Alcotest.(check string) msg expect_outcome (name o);
    Alcotest.(check bool) (msg ^ " delta presence") expect_delta (d <> None)
  in
  (* Ordinary relative comparisons on both sides of the threshold. *)
  check "timing within threshold" Bench_keys.Timing ~base:1.0 ~next:1.4 "same" true;
  check "timing past threshold" Bench_keys.Timing ~base:1.0 ~next:1.6 "worse" true;
  check "timing improved" Bench_keys.Timing ~base:1.0 ~next:0.4 "better" true;
  check "throughput drop" Bench_keys.Throughput ~base:100.0 ~next:40.0 "worse" true;
  check "throughput gain" Bench_keys.Throughput ~base:100.0 ~next:160.0 "better" true;
  check "det drift" Bench_keys.Deterministic ~base:2.0 ~next:2.1 "changed" true;
  check "det equal" Bench_keys.Deterministic ~base:2.0 ~next:2.0 "same" true;
  (* Zero baseline: no relative scale — the key's direction decides, and
     no delta is reported. *)
  check "time appears from zero" Bench_keys.Timing ~base:0.0 ~next:1.5 "worse" false;
  check "throughput appears from zero" Bench_keys.Throughput ~base:0.0 ~next:100.0
    "better" false;
  check "det appears from zero" Bench_keys.Deterministic ~base:0.0 ~next:1.2
    "changed" false;
  check "zero baseline unchanged" Bench_keys.Timing ~base:0.0 ~next:0.0 "same" true;
  (* Non-finite values must flag, never silently pass a threshold check. *)
  check "nan next" Bench_keys.Timing ~base:1.0 ~next:nan "changed" false;
  check "nan base" Bench_keys.Deterministic ~base:nan ~next:1.0 "changed" false;
  check "inf next" Bench_keys.Throughput ~base:100.0 ~next:infinity "changed" false;
  (* Equal infinities count as unchanged rather than mismatched. *)
  check "equal inf" Bench_keys.Timing ~base:infinity ~next:infinity "same" true

(* ----------------------------------------------------------------- zipf *)

module Workload = Ron_util.Workload

let test_zipf_analytic () =
  let z = Workload.Zipf.create ~n:4 ~s:1.0 in
  (* Weights 1, 1/2, 1/3, 1/4 normalize over 25/12. *)
  let total = 1.0 +. 0.5 +. (1.0 /. 3.0) +. 0.25 in
  check_float "mass 0" (1.0 /. total) (Workload.Zipf.mass z 0);
  check_float "mass 3" (0.25 /. total) (Workload.Zipf.mass z 3);
  check_float "cdf end" 1.0 (Workload.Zipf.cdf z 3);
  let u = Workload.Zipf.create ~n:8 ~s:0.0 in
  check_float "s=0 uniform mass" 0.125 (Workload.Zipf.mass u 5)

let test_zipf_deterministic () =
  let z = Workload.Zipf.create ~n:1000 ~s:1.2 in
  for i = 0 to 200 do
    check_int "same (seed, i) draw"
      (Workload.Zipf.sample_at z ~seed:31 i)
      (Workload.Zipf.sample_at z ~seed:31 i)
  done;
  let differs = ref false in
  for i = 0 to 200 do
    if Workload.Zipf.sample_at z ~seed:31 i <> Workload.Zipf.sample_at z ~seed:32 i then
      differs := true
  done;
  check_bool "seed sensitivity" !differs

let prop_zipf_in_range =
  QCheck.Test.make ~name:"zipf sample in [0, n)" ~count:200
    QCheck.(tup3 (int_range 1 50) (float_range 0.0 2.5) small_nat)
    (fun (n, s, i) ->
      let z = Workload.Zipf.create ~n ~s in
      let k = Workload.Zipf.sample_at z ~seed:7 i in
      k >= 0 && k < n)

let prop_zipf_inverts_cdf =
  (* sample must return the smallest rank whose cdf exceeds the deviate. *)
  QCheck.Test.make ~name:"zipf sample inverts cdf" ~count:500
    QCheck.(tup3 (int_range 1 40) (float_range 0.0 2.0) (float_range 0.0 0.9999))
    (fun (n, s, u) ->
      let z = Workload.Zipf.create ~n ~s in
      let k = Workload.Zipf.cdf z (Workload.Zipf.sample z u) in
      let ok_above = k > u in
      let ok_least =
        Workload.Zipf.sample z u = 0
        || Workload.Zipf.cdf z (Workload.Zipf.sample z u - 1) <= u
      in
      ok_above && ok_least)

(* Empirical head and tail mass over a large seeded draw must pin the
   analytic CDF: the head (rank 0) within 10% relative, the tail
   (ranks >= n/2) within 10% relative of its analytic mass. *)
let test_zipf_empirical_mass () =
  let n = 100 and draws = 200_000 in
  let z = Workload.Zipf.create ~n ~s:1.1 in
  let counts = Array.make n 0 in
  for i = 0 to draws - 1 do
    let k = Workload.Zipf.sample_at z ~seed:91 i in
    counts.(k) <- counts.(k) + 1
  done;
  let freq k = float_of_int counts.(k) /. float_of_int draws in
  let head_analytic = Workload.Zipf.mass z 0 in
  check_bool "head mass within 10%"
    (Float.abs (freq 0 -. head_analytic) < 0.1 *. head_analytic);
  let tail_emp = ref 0.0 in
  for k = n / 2 to n - 1 do
    tail_emp := !tail_emp +. freq k
  done;
  let tail_analytic = 1.0 -. Workload.Zipf.cdf z ((n / 2) - 1) in
  check_bool "tail mass within 10%"
    (Float.abs (!tail_emp -. tail_analytic) < 0.1 *. tail_analytic);
  (* And the skew is real: the hottest rank beats the whole tail. *)
  check_bool "head outweighs tail" (freq 0 > !tail_emp)

let test_u01_range () =
  for i = 0 to 10_000 do
    let u = Workload.u01 ~seed:5 i in
    check_bool "in [0,1)" (u >= 0.0 && u < 1.0)
  done

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "ron_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int covers residues" `Quick test_rng_int_covers;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "copy replays" `Quick test_rng_copy;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "gaussian moments" `Slow test_rng_gaussian_moments;
          Alcotest.test_case "weighted index frequencies" `Quick test_weighted_index;
          Alcotest.test_case "weighted index zero weight" `Quick test_weighted_index_zero_weight;
          Alcotest.test_case "invalid arguments" `Quick test_rng_invalid_args;
        ] );
      ( "bits",
        [
          Alcotest.test_case "known values" `Quick test_bits_values;
          qt prop_bits_consistent;
        ] );
      ( "qfloat",
        [
          Alcotest.test_case "zero" `Quick test_qfloat_zero;
          Alcotest.test_case "powers of two exact" `Quick test_qfloat_exact_powers;
          Alcotest.test_case "bit cost positive" `Quick test_qfloat_bits_positive;
          Alcotest.test_case "out-of-range rejected" `Quick test_qfloat_out_of_range;
          Alcotest.test_case "codec_for covers 2*Delta" `Quick test_qfloat_codec_for_range;
          qt prop_qfloat_upper_bound;
          qt prop_qfloat_relative_error;
          qt prop_qfloat_monotone;
        ] );
      ( "bench_keys",
        [
          Alcotest.test_case "classify directions" `Quick test_bench_keys_classify;
          Alcotest.test_case "verdict edge cases" `Quick test_bench_keys_verdict;
        ] );
      ( "workload",
        [
          Alcotest.test_case "zipf analytic mass/cdf" `Quick test_zipf_analytic;
          Alcotest.test_case "zipf deterministic draws" `Quick test_zipf_deterministic;
          Alcotest.test_case "zipf empirical head/tail mass" `Quick test_zipf_empirical_mass;
          Alcotest.test_case "u01 range" `Quick test_u01_range;
          qt prop_zipf_in_range;
          qt prop_zipf_inverts_cdf;
        ] );
      ( "stats",
        [
          Alcotest.test_case "sub-one rounds up" `Quick test_qfloat_sub_one_rounds_up;
          Alcotest.test_case "weighted index single bucket" `Quick test_weighted_index_single;
          Alcotest.test_case "of_ints" `Quick test_stats_of_ints;
          Alcotest.test_case "empty samples" `Quick test_stats_empty;
          Alcotest.test_case "empty summary" `Quick test_stats_empty_summary;
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
    ]
