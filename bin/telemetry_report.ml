(* Render a --telemetry JSONL snapshot series as per-series min/max/last
   plus a sparkline-style time table, analogous to trace_report for
   traces. Series are extracted per name: counter deltas, gauge levels,
   bounded-histogram count/p99, gc fields, rss_kb, and two derived
   series when their counters appear at all: an oracle hit-rate
   (hits / (hits + builds) per sample) and a serving throughput
   (serve.queries delta over the sample's wall-clock span, in qps).
   --json emits the same aggregates machine-readably for CI.

   usage: telemetry_report FILE.jsonl [--json] *)

module Trace_read = Ron_obs.Trace_read
module Json = Ron_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let number = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float f -> Some f
  | _ -> None

(* A series is (sample index, value) points — sections only carry a name
   once it has something to report, so indices may be sparse. *)
type series = { sname : string; points : (int * float) list }

(* Rendering lives in Ron_obs.Sparkline (shared, unit-tested): carry-
   forward resample seeded with the series' first value, column
   averaging, and mid-block rendering for flat or single-sample series. *)
let sparkline n_samples s = Ron_obs.Sparkline.render ~samples:n_samples s.points

let stats s =
  let vs = List.map snd s.points in
  let mn = List.fold_left Float.min infinity vs in
  let mx = List.fold_left Float.max neg_infinity vs in
  let sum = List.fold_left ( +. ) 0.0 vs in
  let last = List.nth vs (List.length vs - 1) in
  (mn, mx, sum /. float_of_int (List.length vs), last)

let () =
  let file = ref None and json = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--json" :: rest ->
      json := true;
      parse_args rest
    | arg :: rest when !file = None && String.length arg > 0 && arg.[0] <> '-' ->
      file := Some arg;
      parse_args rest
    | arg :: _ -> fail "telemetry_report: unexpected argument %S" arg
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let file =
    match !file with
    | Some f -> f
    | None ->
      prerr_endline "usage: telemetry_report FILE.jsonl [--json]";
      exit 2
  in
  let snaps =
    match Trace_read.read_snapshot_file file with
    | exception Sys_error e -> fail "telemetry_report: %s" e
    | Error e -> fail "telemetry_report: %s: %s" file e
    | Ok snaps -> (
      match Trace_read.validate_snapshots snaps with
      | Error e -> fail "telemetry_report: %s: %s" file e
      | Ok 0 -> fail "telemetry_report: %s: no telemetry samples" file
      | Ok _ -> snaps)
  in
  let n_samples = List.length snaps in
  (* name -> points, accumulated in sample order. *)
  let acc : (string, (int * float) list) Hashtbl.t = Hashtbl.create 64 in
  let push name i v =
    Hashtbl.replace acc name ((i, v) :: Option.value (Hashtbl.find_opt acc name) ~default:[])
  in
  let hits_builds = ref [] in
  let serve_qps = ref [] in
  let ts_arr =
    Array.of_list (List.map (fun (s : Trace_read.snapshot) -> s.Trace_read.sts) snaps)
  in
  List.iteri
    (fun i (s : Trace_read.snapshot) ->
      List.iter
        (fun (k, v) -> Option.iter (push ("counter:" ^ k) i) (number v))
        s.counters;
      List.iter (fun (k, v) -> Option.iter (push ("gauge:" ^ k) i) (number v)) s.gauges;
      List.iter
        (fun (k, v) ->
          match v with
          | Json.Obj fields ->
            Option.iter
              (fun c -> Option.iter (push ("hist:" ^ k ^ ".count") i) (number c))
              (List.assoc_opt "count" fields);
            Option.iter
              (fun p -> Option.iter (push ("hist:" ^ k ^ ".p99") i) (number p))
              (List.assoc_opt "p99" fields)
          | _ -> ())
        s.hists;
      (match s.gc with
      | Some fields ->
        List.iter (fun (k, v) -> Option.iter (push ("gc." ^ k) i) (number v)) fields
      | None -> ());
      (match s.rss_kb with Some kb -> push "rss_kb" i (float_of_int kb) | None -> ());
      let delta k =
        match List.assoc_opt k s.counters with
        | Some (Json.Int d) -> float_of_int d
        | _ -> 0.0
      in
      let h = delta "oracle.row_hits" and b = delta "oracle.row_builds" in
      if h +. b > 0.0 then hits_builds := (i, h /. (h +. b)) :: !hits_builds;
      (* Serving throughput: queries completed this sample over the
         sample's wall-clock span (ts is ns). The first sample has no
         span, and a clock stall must not divide by zero. *)
      let q = delta "serve.queries" in
      if q > 0.0 && i > 0 then begin
        let dt = float_of_int (ts_arr.(i) - ts_arr.(i - 1)) /. 1e9 in
        if dt > 0.0 then serve_qps := (i, q /. dt) :: !serve_qps
      end)
    snaps;
  if !hits_builds <> [] then
    Hashtbl.replace acc "derived:oracle.hit_rate" !hits_builds;
  if !serve_qps <> [] then Hashtbl.replace acc "derived:serve.qps" !serve_qps;
  let series =
    Hashtbl.fold (fun sname points l -> { sname; points = List.rev points } :: l) acc []
    |> List.sort (fun a b -> String.compare a.sname b.sname)
  in
  let ts_first = (List.hd snaps).Trace_read.sts in
  let ts_last = (List.nth snaps (n_samples - 1)).Trace_read.sts in
  if !json then begin
    let series_json s =
      let mn, mx, mean, last = stats s in
      Json.Obj
        [
          ("name", Json.String s.sname);
          ("points", Json.Int (List.length s.points));
          ("min", Json.Float mn);
          ("max", Json.Float mx);
          ("mean", Json.Float mean);
          ("last", Json.Float last);
        ]
    in
    let report =
      Json.Obj
        [
          ("schema", Json.String "ron-telemetry-report/1");
          ("file", Json.String file);
          ("samples", Json.Int n_samples);
          ("ts_first", Json.Int ts_first);
          ("ts_last", Json.Int ts_last);
          ("series", Json.List (List.map series_json series));
        ]
    in
    print_endline (Json.to_string report)
  end
  else begin
    Printf.printf "telemetry_report: %s: %d samples, ts %d..%d, %d series\n\n" file
      n_samples ts_first ts_last (List.length series);
    Printf.printf "%-36s %7s %12s %12s %12s  %s\n" "series" "points" "min" "max" "last"
      "trend";
    Printf.printf "%s\n" (String.make 124 '-');
    List.iter
      (fun s ->
        let mn, mx, _, last = stats s in
        Printf.printf "%-36s %7d %12.6g %12.6g %12.6g  %s\n" s.sname
          (List.length s.points) mn mx last (sparkline n_samples s))
      series
  end
