(* Compare two BENCH_*.json reports (schema ron-bench/1) section by
   section and flag regressions. Three kinds of leaf comparison:

   - timing keys (suffix "_s" or containing "_ns"): noisy wall-clock
     measurements, lower is better, compared with a relative threshold —
     default 0.5 (50% slower fails), overridable with --threshold or the
     RON_BENCH_DIFF_THRESHOLD env var;
   - throughput keys ("qps", *_qps, *_per_s): the same threshold with the
     direction flipped — higher is better, a drop fails;
   - booleans (the bit-identity invariants): must match exactly;
   - every other number or string: deterministic outputs of seeded
     workloads (stretch, hops, counter deltas, table bits), compared
     with a tight relative tolerance (--det-threshold, default 1e-9).

   The timing/throughput/deterministic split lives in
   Ron_util.Bench_keys so report writers and this gate agree on it.

   Environment-describing keys (timestamp, ocaml_version, ron_jobs,
   word_size, peak_rss_kb, ...), derived speedup_* ratios, and the
   profile section are ignored. List sections are matched entry-by-entry
   on their "n"/"nodes" key, so a CI run at --sizes 200,400 diffs cleanly
   against a committed baseline at 500,1000,2000: unmatched entries are
   reported as skipped, not failed.

   Prints a human table, optionally writes a machine-readable verdict
   (--out FILE, schema ron-bench-diff/1), and exits 1 on regression
   unless --warn-only.

   usage: bench_diff [--threshold X] [--det-threshold X] [--out FILE]
                     [--warn-only] BASE.json NEW.json *)

module Json = Ron_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 2) fmt

let ignored_keys =
  [
    "schema"; "timestamp"; "ocaml_version"; "ron_jobs"; "recommended_domains";
    "word_size"; "peak_rss_kb"; "profile"; "minor_words_per_query";
  ]

let ignored key =
  List.mem key ignored_keys
  || (String.length key >= 8 && String.sub key 0 8 = "speedup_")

type status = Ok_same | Faster | Slower | Mismatch | Skipped

type row = {
  path : string;
  base : string;
  next : string;
  delta : float option; (* relative change for numerics *)
  status : status;
  note : string;
}

let status_string = function
  | Ok_same -> "ok"
  | Faster -> "faster"
  | Slower -> "SLOWER"
  | Mismatch -> "MISMATCH"
  | Skipped -> "skip"

let rows : row list ref = ref []

let add path base next delta status note =
  rows := { path; base; next; delta; status; note } :: !rows

let num_string v = Printf.sprintf "%.6g" v

let number = function Json.Int i -> Some (float_of_int i) | Json.Float f -> Some f | _ -> None

let compare_leaf ~threshold ~det_threshold path key base next =
  match (number base, number next) with
  | Some b, Some n -> (
    let module K = Ron_util.Bench_keys in
    let dir = K.classify key in
    let outcome, delta = K.verdict dir ~threshold ~det_threshold ~base:b ~next:n in
    let nonfinite = not (Float.is_finite b && Float.is_finite n) in
    match outcome with
    | K.Same -> add path (num_string b) (num_string n) delta Ok_same ""
    | K.Better ->
      add path (num_string b) (num_string n) delta Faster
        (if delta = None then "zero baseline: judged by key direction" else "")
    | K.Worse ->
      let note =
        match (delta, dir) with
        | None, _ -> "zero baseline: judged by key direction"
        | Some _, K.Timing ->
          Printf.sprintf "exceeds +%.0f%% threshold" (threshold *. 100.0)
        | Some _, _ ->
          Printf.sprintf "throughput fell past -%.0f%% threshold" (threshold *. 100.0)
      in
      add path (num_string b) (num_string n) delta Slower note
    | K.Changed ->
      let note =
        if nonfinite then "non-finite value"
        else if delta = None then "deterministic value changed from zero baseline"
        else "deterministic value changed"
      in
      add path (num_string b) (num_string n) delta Mismatch note)
  | _ -> (
    match (base, next) with
    | Json.Bool b, Json.Bool n ->
      if b = n then add path (string_of_bool b) (string_of_bool n) None Ok_same ""
      else add path (string_of_bool b) (string_of_bool n) None Mismatch "invariant flipped"
    | Json.String b, Json.String n ->
      if String.equal b n then add path b n None Ok_same ""
      else add path b n None Mismatch "label changed"
    | _ ->
      add path (Json.to_line base) (Json.to_line next) None Mismatch "type changed")

(* List entries are benchmark points keyed by problem size. *)
let entry_key j =
  match Json.member "n" j with
  | Some (Json.Int n) -> Some n
  | _ -> ( match Json.member "nodes" j with Some (Json.Int n) -> Some n | _ -> None)

let rec compare_values ~threshold ~det_threshold path key base next =
  match (base, next) with
  | Json.Obj bs, Json.Obj ns ->
    List.iter
      (fun (k, bv) ->
        if not (ignored k) then begin
          let sub = if path = "" then k else path ^ "." ^ k in
          match List.assoc_opt k ns with
          | Some nv -> compare_values ~threshold ~det_threshold sub k bv nv
          | None -> add sub (Json.to_line bv) "-" None Skipped "missing in NEW"
        end)
      bs;
    List.iter
      (fun (k, nv) ->
        if (not (ignored k)) && List.assoc_opt k bs = None then
          add (if path = "" then k else path ^ "." ^ k) "-" (Json.to_line nv) None Skipped
            "missing in BASE")
      ns
  | Json.List bs, Json.List ns ->
    List.iteri
      (fun i bv ->
        match entry_key bv with
        | None ->
          (* Unkeyed list: positional. *)
          let sub = Printf.sprintf "%s[%d]" path i in
          if i < List.length ns then
            compare_values ~threshold ~det_threshold sub key bv (List.nth ns i)
          else add sub (Json.to_line bv) "-" None Skipped "missing in NEW"
        | Some n -> (
          let sub = Printf.sprintf "%s[n=%d]" path n in
          match List.find_opt (fun nv -> entry_key nv = Some n) ns with
          | Some nv -> compare_values ~threshold ~det_threshold sub key bv nv
          | None -> add sub "-" "-" None Skipped "size not measured in NEW"))
      bs;
    List.iter
      (fun nv ->
        match entry_key nv with
        | Some n when not (List.exists (fun bv -> entry_key bv = Some n) bs) ->
          add (Printf.sprintf "%s[n=%d]" path n) "-" "-" None Skipped
            "size not measured in BASE"
        | _ -> ())
      ns
  | _ -> compare_leaf ~threshold ~det_threshold path key base next

let read_json file =
  let ic = try open_in file with Sys_error e -> fail "bench_diff: %s" e in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  match Json.of_string s with
  | Ok j -> j
  | Error e -> fail "bench_diff: %s: %s" file e

let () =
  let env_threshold =
    match Sys.getenv_opt "RON_BENCH_DIFF_THRESHOLD" with
    | Some s -> (
      match float_of_string_opt s with
      | Some f when f > 0.0 -> f
      | _ -> fail "bench_diff: bad RON_BENCH_DIFF_THRESHOLD %S" s)
    | None -> 0.5
  in
  let threshold = ref env_threshold and det_threshold = ref 1e-9 in
  let out = ref None and warn_only = ref false and files = ref [] in
  let rec parse_args = function
    | [] -> ()
    | "--threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f > 0.0 -> threshold := f
      | _ -> fail "bench_diff: bad --threshold %S" v);
      parse_args rest
    | "--det-threshold" :: v :: rest ->
      (match float_of_string_opt v with
      | Some f when f >= 0.0 -> det_threshold := f
      | _ -> fail "bench_diff: bad --det-threshold %S" v);
      parse_args rest
    | "--out" :: v :: rest ->
      out := Some v;
      parse_args rest
    | "--warn-only" :: rest ->
      warn_only := true;
      parse_args rest
    | arg :: rest when String.length arg > 0 && arg.[0] <> '-' ->
      files := arg :: !files;
      parse_args rest
    | arg :: _ -> fail "bench_diff: unexpected argument %S" arg
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let base_file, next_file =
    match List.rev !files with
    | [ b; n ] -> (b, n)
    | _ ->
      prerr_endline
        "usage: bench_diff [--threshold X] [--det-threshold X] [--out FILE] [--warn-only] \
         BASE.json NEW.json";
      exit 2
  in
  let base = read_json base_file and next = read_json next_file in
  compare_values ~threshold:!threshold ~det_threshold:!det_threshold "" "" base next;
  let all = List.rev !rows in
  Printf.printf "bench_diff: %s vs %s (threshold +%.0f%%, det %g)\n\n" base_file next_file
    (!threshold *. 100.0) !det_threshold;
  Printf.printf "%-52s %14s %14s %8s  %-8s %s\n" "key" "base" "new" "delta" "status" "note";
  Printf.printf "%s\n" (String.make 110 '-');
  List.iter
    (fun r ->
      let delta_s =
        match r.delta with
        | Some d when Float.is_finite d -> Printf.sprintf "%+.1f%%" (d *. 100.0)
        | Some _ -> "inf"
        | None -> "-"
      in
      Printf.printf "%-52s %14s %14s %8s  %-8s %s\n" r.path r.base r.next delta_s
        (status_string r.status) r.note)
    all;
  let count st = List.length (List.filter (fun r -> r.status = st) all) in
  let slower = count Slower and mismatch = count Mismatch in
  let faster = count Faster and skipped = count Skipped and same = count Ok_same in
  let regressions = slower + mismatch in
  Printf.printf "\n%d compared: %d ok, %d faster, %d slower, %d mismatched, %d skipped\n"
    (List.length all - skipped) same faster slower mismatch skipped;
  let verdict = if regressions = 0 then "ok" else "regression" in
  (match !out with
  | None -> ()
  | Some file ->
    let row_json r =
      Json.Obj
        [
          ("key", Json.String r.path);
          ("base", Json.String r.base);
          ("new", Json.String r.next);
          ("delta", match r.delta with Some d when Float.is_finite d -> Json.Float d | _ -> Json.Null);
          ("status", Json.String (status_string r.status));
          ("note", Json.String r.note);
        ]
    in
    let pick st = List.filter (fun r -> r.status = st) all in
    let oc = try open_out file with Sys_error e -> fail "bench_diff: %s" e in
    output_string oc
      (Json.to_string
         (Json.Obj
            [
              ("schema", Json.String "ron-bench-diff/1");
              ("base", Json.String base_file);
              ("new", Json.String next_file);
              ("threshold", Json.Float !threshold);
              ("det_threshold", Json.Float !det_threshold);
              ("compared", Json.Int (List.length all - skipped));
              ("verdict", Json.String verdict);
              ("warn_only", Json.Bool !warn_only);
              ("regressions", Json.List (List.map row_json (pick Slower @ pick Mismatch)));
              ("improvements", Json.List (List.map row_json (pick Faster)));
              ("skipped", Json.List (List.map row_json (pick Skipped)));
            ]));
    close_out oc;
    Printf.printf "verdict json -> %s\n" file);
  if regressions > 0 then begin
    Printf.printf "verdict: REGRESSION (%d finding%s)%s\n" regressions
      (if regressions = 1 then "" else "s")
      (if !warn_only then " [warn-only: exit 0]" else "");
    if not !warn_only then exit 1
  end
  else Printf.printf "verdict: ok\n"
