(* Aggregate a JSONL trace (--trace output) into a per-span table: count,
   total and self time, p50/p95 span duration, and a per-domain breakdown.
   Optionally emit folded-stack lines (one "a;b;c SELF_NS" per stack path)
   for flamegraph tools via --folded FILE.

   Durations come from matching B/E pairs, replayed per domain with the
   same stack discipline that Trace_read.validate enforces; self time is a
   span's duration minus the durations of its same-domain children.
   Timestamps are whatever clock the trace was recorded with (logical
   ticks by default, nanoseconds under ron_cli --trace), so the columns
   are labelled generically as "ticks".

   usage: trace_report FILE.jsonl [--folded OUT] [--json] *)

module Trace_read = Ron_obs.Trace_read
module Json = Ron_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

type span_agg = {
  mutable count : int;
  mutable total : int;
  mutable self : int;
  mutable durations : int list;
  by_dom : (int, int * int) Hashtbl.t; (* dom -> count, total *)
}

type frame = { name : string; t0 : int; mutable child : int; path : string }

(* Nearest-rank percentiles via the shared helper (the same rank rule
   slo_report and the bucketed histograms use); [p] in [0,100]. *)
let percentile sorted p =
  let v = Ron_util.Stats.percentile_sorted sorted p in
  if Float.is_nan v then 0 else int_of_float v

let sorted_durations agg =
  let xs = Array.of_list (List.rev_map float_of_int agg.durations) in
  Ron_util.Fsort.sort_floats xs;
  xs

let () =
  let file = ref None and folded = ref None and json = ref false in
  let rec parse_args = function
    | [] -> ()
    | "--folded" :: out :: rest ->
      folded := Some out;
      parse_args rest
    | "--json" :: rest ->
      json := true;
      parse_args rest
    | arg :: rest when !file = None && String.length arg > 0 && arg.[0] <> '-' ->
      file := Some arg;
      parse_args rest
    | arg :: _ -> fail "trace_report: unexpected argument %S" arg
  in
  parse_args (List.tl (Array.to_list Sys.argv));
  let file =
    match !file with
    | Some f -> f
    | None ->
      prerr_endline "usage: trace_report FILE.jsonl [--folded OUT] [--json]";
      exit 2
  in
  let events =
    match Trace_read.read_file file with
    | exception Sys_error e -> fail "trace_report: %s" e
    | Error e -> fail "trace_report: %s: %s" file e
    | Ok events -> (
      match Trace_read.validate events with
      | Error e -> fail "trace_report: %s: %s" file e
      | Ok _ -> events)
  in
  let spans : (string, span_agg) Hashtbl.t = Hashtbl.create 16 in
  let instants : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let folded_acc : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let stacks : (int, frame list) Hashtbl.t = Hashtbl.create 8 in
  let stack dom = Option.value (Hashtbl.find_opt stacks dom) ~default:[] in
  List.iter
    (fun (e : Trace_read.event) ->
      match e.ph with
      | Trace_read.I ->
        Hashtbl.replace instants e.name
          (1 + Option.value (Hashtbl.find_opt instants e.name) ~default:0)
      | Trace_read.B ->
        let parent = stack e.dom in
        let path =
          match parent with [] -> e.name | top :: _ -> top.path ^ ";" ^ e.name
        in
        Hashtbl.replace stacks e.dom ({ name = e.name; t0 = e.ts; child = 0; path } :: parent)
      | Trace_read.E -> (
        match stack e.dom with
        | [] -> assert false (* validate already accepted the stream *)
        | top :: rest ->
          Hashtbl.replace stacks e.dom rest;
          let dur = e.ts - top.t0 in
          let self = dur - top.child in
          (match rest with [] -> () | parent :: _ -> parent.child <- parent.child + dur);
          let agg =
            match Hashtbl.find_opt spans e.name with
            | Some a -> a
            | None ->
              let a =
                { count = 0; total = 0; self = 0; durations = []; by_dom = Hashtbl.create 4 }
              in
              Hashtbl.replace spans e.name a;
              a
          in
          agg.count <- agg.count + 1;
          agg.total <- agg.total + dur;
          agg.self <- agg.self + self;
          agg.durations <- dur :: agg.durations;
          let c, t = Option.value (Hashtbl.find_opt agg.by_dom e.dom) ~default:(0, 0) in
          Hashtbl.replace agg.by_dom e.dom (c + 1, t + dur);
          Hashtbl.replace folded_acc top.path
            (self + Option.value (Hashtbl.find_opt folded_acc top.path) ~default:0)))
    events;
  let rows = Hashtbl.fold (fun name agg acc -> (name, agg) :: acc) spans [] in
  let rows =
    List.sort
      (fun (na, a) (nb, b) ->
        match compare b.total a.total with 0 -> String.compare na nb | c -> c)
      rows
  in
  let inst = Hashtbl.fold (fun name c acc -> (name, c) :: acc) instants [] in
  let inst = List.sort (fun (a, _) (b, _) -> String.compare a b) inst in
  if !json then begin
    (* Machine-readable mirror of the table, for CI consumption. *)
    let span_json (name, agg) =
      let sorted = sorted_durations agg in
      let doms = Hashtbl.fold (fun d ct acc -> (d, ct) :: acc) agg.by_dom [] in
      let doms = List.sort (fun (a, _) (b, _) -> compare a b) doms in
      Json.Obj
        [
          ("name", Json.String name);
          ("count", Json.Int agg.count);
          ("total_ticks", Json.Int agg.total);
          ("self_ticks", Json.Int agg.self);
          ("p50", Json.Int (percentile sorted 50.0));
          ("p95", Json.Int (percentile sorted 95.0));
          ("p99", Json.Int (percentile sorted 99.0));
          ("p999", Json.Int (percentile sorted 99.9));
          ( "domains",
            Json.List
              (List.map
                 (fun (d, (c, t)) ->
                   Json.Obj
                     [ ("dom", Json.Int d); ("count", Json.Int c); ("total_ticks", Json.Int t) ])
                 doms) );
        ]
    in
    let report =
      Json.Obj
        [
          ("schema", Json.String "ron-trace-report/1");
          ("file", Json.String file);
          ("events", Json.Int (List.length events));
          ("spans", Json.List (List.map span_json rows));
          ( "instants",
            Json.List
              (List.map
                 (fun (name, c) ->
                   Json.Obj [ ("name", Json.String name); ("count", Json.Int c) ])
                 inst) );
        ]
    in
    print_endline (Json.to_string report)
  end
  else begin
    Printf.printf "trace_report: %s: %d events, %d span names, %d instant names\n\n" file
      (List.length events) (List.length rows) (Hashtbl.length instants);
    Printf.printf "%-28s %8s %14s %14s %12s %12s %12s %12s  %s\n" "span" "count"
      "total_ticks" "self_ticks" "p50" "p95" "p99" "p999" "domains (count@total)";
    Printf.printf "%s\n" (String.make 136 '-');
    List.iter
      (fun (name, agg) ->
        let sorted = sorted_durations agg in
        let doms = Hashtbl.fold (fun d ct acc -> (d, ct) :: acc) agg.by_dom [] in
        let doms = List.sort (fun (a, _) (b, _) -> compare a b) doms in
        let doms_s =
          String.concat " "
            (List.map (fun (d, (c, t)) -> Printf.sprintf "%d:%d@%d" d c t) doms)
        in
        Printf.printf "%-28s %8d %14d %14d %12d %12d %12d %12d  %s\n" name agg.count
          agg.total agg.self
          (percentile sorted 50.0) (percentile sorted 95.0) (percentile sorted 99.0)
          (percentile sorted 99.9) doms_s)
      rows;
    if inst <> [] then begin
      Printf.printf "\n%-28s %8s\n" "instant" "count";
      Printf.printf "%s\n" (String.make 37 '-');
      List.iter (fun (name, c) -> Printf.printf "%-28s %8d\n" name c) inst
    end
  end;
  match !folded with
  | None -> ()
  | Some out ->
    let oc = open_out out in
    let paths = Hashtbl.fold (fun p v acc -> (p, v) :: acc) folded_acc [] in
    List.iter
      (fun (p, v) -> Printf.fprintf oc "%s %d\n" p v)
      (List.sort (fun (a, _) (b, _) -> String.compare a b) paths);
    close_out oc;
    if not !json then
      Printf.printf "\nfolded stacks: %d paths -> %s\n" (List.length paths) out
