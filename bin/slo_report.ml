(* Render a ron-slo/1 verdict (ron_cli --slo-out output) as a human
   report: the spec, every closed window with per-objective value / burn
   rate / verdict, burn and latency summaries (p50/p95/p99/p999 of the
   retained flight exemplar latencies via the shared percentile helper),
   and — when the verdict embeds a flight dump — the slow-query exemplars
   attributed to each violated window.

   usage: slo_report FILE.json [--json] *)

module Json = Ron_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let mem name j = Json.member name j

let str = function Some (Json.String s) -> s | _ -> "?"
let num = function Some (Json.Int i) -> float_of_int i | Some (Json.Float f) -> f | _ -> nan
let int_of = function Some (Json.Int i) -> i | _ -> 0
let bool_of = function Some (Json.Bool b) -> b | _ -> false
let list_of = function Some (Json.List l) -> l | _ -> []

type wrow = {
  index : int;
  count : int;
  ok : int;
  results : (string * float * float * bool) list; (* objective, value, burn, violated *)
}

type xrow = { x_window : int; x_qid : int; x_lat : float; x_json : Json.t }

let parse_window j =
  {
    index = int_of (mem "window" j);
    count = int_of (mem "count" j);
    ok = int_of (mem "delivered" j);
    results =
      List.map
        (fun r ->
          ( str (mem "objective" r),
            num (mem "value" r),
            num (mem "burn" r),
            bool_of (mem "violated" r) ))
        (list_of (mem "results" j));
  }

let parse_exemplars flight =
  match flight with
  | None -> []
  | Some f ->
    List.concat_map
      (fun wj ->
        let w = int_of (mem "window" wj) in
        List.map
          (fun xj ->
            {
              x_window = w;
              x_qid = int_of (mem "qid" xj);
              x_lat = num (mem "lat" xj);
              x_json = xj;
            })
          (list_of (mem "exemplars" wj)))
      (list_of (mem "windows" f))

let () =
  let file = ref None and json = ref false in
  List.iter
    (fun arg ->
      if String.equal arg "--json" then json := true
      else if !file = None && String.length arg > 0 && arg.[0] <> '-' then file := Some arg
      else fail "slo_report: unexpected argument %S" arg)
    (List.tl (Array.to_list Sys.argv));
  let file =
    match !file with
    | Some f -> f
    | None ->
      prerr_endline "usage: slo_report FILE.json [--json]";
      exit 2
  in
  let text =
    match In_channel.with_open_text file In_channel.input_all with
    | s -> s
    | exception Sys_error e -> fail "slo_report: %s" e
  in
  let v =
    match Json.of_string text with
    | Ok j -> j
    | Error e -> fail "slo_report: %s: %s" file e
  in
  (match mem "schema" v with
  | Some (Json.String "ron-slo/1") -> ()
  | _ -> fail "slo_report: %s: not a ron-slo/1 verdict" file);
  let spec = str (mem "spec" v) in
  let window = int_of (mem "window" v) in
  let totals = mem "totals" v in
  let t_field name = int_of (Option.bind totals (mem name)) in
  let max_burn = num (Option.bind totals (mem "max_burn")) in
  let windows = List.map parse_window (list_of (mem "windows" v)) in
  let exemplars = parse_exemplars (mem "flight" v) in
  let ok = bool_of (mem "ok" v) in
  (* A flight window of W qids maps into the SLO window sequence by qid
     range; exemplar qid / slo_window gives the SLO window it fell in. *)
  let slo_index_of_qid qid = if window > 0 then qid / window else 0 in
  let lat_summary =
    let xs = Array.of_list (List.map (fun x -> x.x_lat) exemplars) in
    Ron_util.Fsort.sort_floats xs;
    xs
  in
  let pct p = Ron_util.Stats.percentile_sorted lat_summary p in
  if !json then begin
    let violated =
      List.filter (fun w -> List.exists (fun (_, _, _, v) -> v) w.results) windows
    in
    let report =
      Json.Obj
        [
          ("schema", Json.String "ron-slo-report/1");
          ("file", Json.String file);
          ("spec", Json.String spec);
          ("window", Json.Int window);
          ("windows", Json.Int (List.length windows));
          ("violated_windows", Json.Int (List.length violated));
          ("max_burn_rate", Json.Float max_burn);
          ("observations", Json.Int (t_field "observations"));
          ("delivered", Json.Int (t_field "delivered"));
          ("exemplars", Json.Int (List.length exemplars));
          ( "exemplar_lat",
            Json.Obj
              [
                ("p50", Json.Float (pct 50.0));
                ("p95", Json.Float (pct 95.0));
                ("p99", Json.Float (pct 99.0));
                ("p999", Json.Float (pct 99.9));
              ] );
          ("ok", Json.Bool ok);
        ]
    in
    print_endline (Json.to_string report)
  end
  else begin
    Printf.printf "slo_report: %s\n" file;
    Printf.printf "  spec: %s   window: %d queries\n" spec window;
    Printf.printf "  windows: %d   violated: %d   max burn rate: %.9g   ok: %b\n\n"
      (List.length windows)
      (List.length
         (List.filter (fun w -> List.exists (fun (_, _, _, v) -> v) w.results) windows))
      max_burn ok;
    Printf.printf "%-8s %8s %10s  %s\n" "window" "count" "delivered"
      "objective value/burn (flag = violated)";
    Printf.printf "%s\n" (String.make 96 '-');
    List.iter
      (fun w ->
        let cells =
          String.concat "  "
            (List.map
               (fun (o, v, b, viol) ->
                 Printf.sprintf "%s: %.9g burn %.3g%s" o v b (if viol then " !" else ""))
               w.results)
        in
        Printf.printf "%-8d %8d %10d  %s\n" w.index w.count w.ok cells)
      windows;
    if exemplars <> [] then begin
      Printf.printf "\nflight exemplars: %d retained (lat p50 %.9g  p95 %.9g  p99 %.9g  p999 %.9g)\n"
        (List.length exemplars) (pct 50.0) (pct 95.0) (pct 99.0) (pct 99.9);
      let violated_set =
        List.filter_map
          (fun w ->
            if List.exists (fun (_, _, _, v) -> v) w.results then Some w.index else None)
          windows
      in
      List.iter
        (fun wi ->
          let hits =
            List.filter (fun x -> slo_index_of_qid x.x_qid = wi) exemplars
          in
          if hits <> [] then begin
            Printf.printf "  violated window %d — %d exemplar(s):\n" wi (List.length hits);
            List.iter
              (fun x -> Printf.printf "    %s\n" (Json.to_line x.x_json))
              hits
          end)
        violated_set
    end
  end
