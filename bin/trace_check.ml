(* Validate a JSONL trace file produced by --trace: every line must parse
   as a JSON object carrying at least "ts" and "name", and the file must
   not be empty. Exit 0 on success, 1 otherwise — used by `make
   trace-smoke` and CI. *)

module Json = Ron_obs.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let () =
  let file =
    match Sys.argv with
    | [| _; file |] -> file
    | _ ->
      prerr_endline "usage: trace_check FILE.jsonl";
      exit 2
  in
  let ic = try open_in file with Sys_error e -> fail "trace_check: %s" e in
  let lines = ref 0 in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then begin
         incr lines;
         match Json.of_string line with
         | Error e -> fail "trace_check: %s line %d: %s" file !lines e
         | Ok j ->
           if Json.member "ts" j = None then
             fail "trace_check: %s line %d: missing \"ts\"" file !lines;
           if Json.member "name" j = None then
             fail "trace_check: %s line %d: missing \"name\"" file !lines
       end
     done
   with End_of_file -> close_in ic);
  if !lines = 0 then fail "trace_check: %s: no trace events" file;
  Printf.printf "trace_check: %s: %d well-formed events\n" file !lines
