(* Validate a JSONL observability file. Default mode checks a --trace
   stream: every line must parse as a trace event (integer "ts"/"dom",
   string "name", "ph" one of B/E/i), per domain the B/E events must
   balance like brackets, the "error" arg (emitted when a span unwinds on
   an exception) may appear only on "E" events and must be a string, and
   the file must not be empty. With --telemetry the file is a --telemetry
   snapshot series instead: seq counts from 0 with no gaps, ts never goes
   backwards, and every section is well-typed (Trace_read.
   validate_snapshots). Exit 0 on success, 1 otherwise — used by
   `make trace-smoke` / `make telemetry-smoke` and CI. *)

module Trace_read = Ron_obs.Trace_read

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let () =
  let telemetry, file =
    match Sys.argv with
    | [| _; file |] -> (false, file)
    | [| _; "--telemetry"; file |] | [| _; file; "--telemetry" |] -> (true, file)
    | _ ->
      prerr_endline "usage: trace_check [--telemetry] FILE.jsonl";
      exit 2
  in
  if telemetry then begin
    match Trace_read.read_snapshot_file file with
    | exception Sys_error e -> fail "trace_check: %s" e
    | Error e -> fail "trace_check: %s: %s" file e
    | Ok snaps -> (
      match Trace_read.validate_snapshots snaps with
      | Error e -> fail "trace_check: %s: %s" file e
      | Ok 0 -> fail "trace_check: %s: no telemetry samples" file
      | Ok n -> Printf.printf "trace_check: %s: %d well-formed telemetry samples\n" file n)
  end
  else begin
    match Trace_read.read_file file with
    | exception Sys_error e -> fail "trace_check: %s" e
    | Error e -> fail "trace_check: %s: %s" file e
    | Ok events -> (
      match Trace_read.validate events with
      | Error e -> fail "trace_check: %s: %s" file e
      | Ok 0 -> fail "trace_check: %s: no trace events" file
      | Ok n -> Printf.printf "trace_check: %s: %d well-formed events\n" file n)
  end
