(* Validate an observability file. Default mode checks a --trace JSONL
   stream: every line must parse as a trace event (integer "ts"/"dom",
   string "name", "ph" one of B/E/i), per domain the B/E events must
   balance like brackets, the "error" arg (emitted when a span unwinds on
   an exception) may appear only on "E" events and must be a string, and
   the file must not be empty. With --telemetry the file is a --telemetry
   snapshot series instead: seq counts from 0 with no gaps, ts never goes
   backwards, and every section is well-typed (Trace_read.
   validate_snapshots). With --expo the file is a Prometheus text-format
   exposition (ron_cli --expo output): TYPE discipline, name/label
   syntax, and histogram invariants (Expo.validate_file). Exit 0 on
   success, 1 otherwise — used by `make trace-smoke` /
   `make telemetry-smoke` / `make slo-smoke` and CI. *)

module Trace_read = Ron_obs.Trace_read

let fail fmt = Printf.ksprintf (fun s -> prerr_endline s; exit 1) fmt

let () =
  let mode, file =
    match Sys.argv with
    | [| _; file |] -> (`Trace, file)
    | [| _; "--telemetry"; file |] | [| _; file; "--telemetry" |] -> (`Telemetry, file)
    | [| _; "--expo"; file |] | [| _; file; "--expo" |] -> (`Expo, file)
    | _ ->
      prerr_endline "usage: trace_check [--telemetry | --expo] FILE";
      exit 2
  in
  match mode with
  | `Expo -> (
    match Ron_obs.Expo.validate_file file with
    | exception Sys_error e -> fail "trace_check: %s" e
    | Error e -> fail "trace_check: %s: %s" file e
    | Ok n -> Printf.printf "trace_check: %s: %d well-formed exposition samples\n" file n)
  | `Telemetry -> begin
    match Trace_read.read_snapshot_file file with
    | exception Sys_error e -> fail "trace_check: %s" e
    | Error e -> fail "trace_check: %s: %s" file e
    | Ok snaps -> (
      match Trace_read.validate_snapshots snaps with
      | Error e -> fail "trace_check: %s: %s" file e
      | Ok 0 -> fail "trace_check: %s: no telemetry samples" file
      | Ok n -> Printf.printf "trace_check: %s: %d well-formed telemetry samples\n" file n)
  end
  | `Trace -> begin
    match Trace_read.read_file file with
    | exception Sys_error e -> fail "trace_check: %s" e
    | Error e -> fail "trace_check: %s: %s" file e
    | Ok events -> (
      match Trace_read.validate events with
      | Error e -> fail "trace_check: %s: %s" file e
      | Ok 0 -> fail "trace_check: %s: no trace events" file
      | Ok n -> Printf.printf "trace_check: %s: %d well-formed events\n" file n)
  end
