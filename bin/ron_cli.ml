(* rings-of-neighbors command-line driver.

   Subcommands (cmdliner):
     estimate    -- build a (0,delta)-triangulation / Thm 3.4 labels on a
                    generated metric and estimate sampled pairs
     route       -- run a routing scheme on a generated graph/metric
     smallworld  -- run small-world lookups
     experiment  -- run one of the named reproduction experiments
     inspect     -- print substrate facts about a generated metric *)

open Cmdliner

module Rng = Ron_util.Rng
module Metric = Ron_metric.Metric
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
module Doubling = Ron_metric.Doubling
module Scheme = Ron_routing.Scheme

(* ------------------------------------------------------ metric selection *)

let make_metric name n seed =
  let rng = Rng.create seed in
  match name with
  | "cloud" -> Generators.random_cloud rng ~n ~dim:2
  | "cloud3d" -> Generators.random_cloud rng ~n ~dim:3
  | "grid" ->
    let side = max 2 (int_of_float (sqrt (float_of_int n))) in
    Generators.grid2d side side
  | "expline" -> Generators.exponential_line (min n 48)
  | "expclusters" ->
    let clusters = max 2 (n / 16) in
    Generators.exponential_clusters rng ~clusters ~per_cluster:(max 1 (n / clusters)) ~base:16.0
  | "latency" ->
    Generators.clustered_latency rng ~clusters:(max 2 (n / 40)) ~per_cluster:40 ~spread:30.0
      ~access:6.0
  | "ring" -> Metric.normalize (Generators.ring n)
  | "line" -> Metric.normalize (Generators.uniform_line n)
  | other -> failwith (Printf.sprintf "unknown metric family %S" other)

let metric_names = [ "cloud"; "cloud3d"; "grid"; "expline"; "expclusters"; "latency"; "ring"; "line" ]

let metric_arg =
  let doc = Printf.sprintf "Metric family: %s." (String.concat ", " metric_names) in
  Arg.(value & opt string "cloud" & info [ "m"; "metric" ] ~docv:"FAMILY" ~doc)

let n_arg = Arg.(value & opt int 128 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")
let seed_arg = Arg.(value & opt int 1 & info [ "s"; "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let delta_arg =
  Arg.(value & opt float 0.25 & info [ "d"; "delta" ] ~docv:"DELTA" ~doc:"Accuracy parameter.")

let pairs_arg =
  Arg.(value & opt int 500 & info [ "p"; "pairs" ] ~docv:"PAIRS" ~doc:"Number of sampled pairs.")

(* --------------------------------------------------------- observability *)

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE" ~doc:"Write JSONL trace events to $(docv).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write an observability snapshot (counters, histograms, per-query costs) to $(docv) \
           as JSON.")

let profile_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile" ] ~docv:"FILE"
        ~doc:
          "Write a hierarchical phase profile (wall time and GC deltas per construction/query \
           phase) to $(docv) as JSON.")

let telemetry_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "telemetry" ] ~docv:"FILE"
        ~doc:
          "Write periodic telemetry snapshots (counter deltas, gauges, bounded-histogram \
           summaries, GC and RSS) to $(docv) as JSONL during the run.")

let telemetry_interval_arg =
  Arg.(
    value
    & opt int 500
    & info [ "telemetry-interval" ] ~docv:"MS"
        ~doc:"Telemetry sampling interval in milliseconds (default 500).")

let expo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "expo" ] ~docv:"FILE"
        ~doc:
          "Write the observability registry (counters, gauges, bucketed histograms, build \
           info) to $(docv) in Prometheus text format — atomically rewritten on every \
           telemetry tick (with $(b,--telemetry)) and once more at exit.")

let slo_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slo" ] ~docv:"SPEC"
        ~doc:
          "Serving objectives, e.g. $(b,p99<=2us,delivery>=0.999): evaluate rolling query \
           windows against the spec and report the per-window error-budget burn rate.")

let slo_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "slo-out" ] ~docv:"FILE"
        ~doc:
          "Write the machine-readable SLO verdict (ron-slo/1 JSON, flight-recorder exemplars \
           embedded) to $(docv). Requires $(b,--slo).")

let slo_window_arg =
  Arg.(
    value & opt int 2000
    & info [ "slo-window" ] ~docv:"Q"
        ~doc:"Queries per SLO evaluation window (default 2000).")

let flight_arg =
  Arg.(
    value & opt int 0
    & info [ "flight" ] ~docv:"K"
        ~doc:
          "Flight recorder: retain the $(docv) slowest queries of every recorder window with \
           full context (0, the default, disables the recorder).")

let flight_trace_every_arg =
  Arg.(
    value & opt int 32
    & info [ "flight-trace-every" ] ~docv:"N"
        ~doc:
          "Capture the per-hop trace for one in $(docv) deterministically sampled queries \
           (default 32; 0 disables trace capture).")

(* Validate the SLO/flight flag set and build the observers; [Error] is a
   user error (stderr + exit 2 at the caller). *)
let make_observers ~slo ~slo_out ~slo_window ~flight ~flight_trace_every =
  if slo_window < 1 then Error "--slo-window must be >= 1"
  else if flight < 0 then Error "--flight must be >= 0"
  else if flight_trace_every < 0 then Error "--flight-trace-every must be >= 0"
  else if slo_out <> None && slo = None then Error "--slo-out requires --slo"
  else
    let flight_rec =
      if flight > 0 then
        Some (Ron_obs.Flight.create ~per_window:flight ~trace_every:flight_trace_every ())
      else None
    in
    match slo with
    | None -> Ok (None, flight_rec)
    | Some spec -> (
      match Ron_obs.Slo.parse spec with
      | Error e -> Error (Printf.sprintf "--slo %S: %s" spec e)
      | Ok objs -> Ok (Some (Ron_obs.Slo.create ~window:slo_window objs), flight_rec))

let jobs_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Worker domains for parallel construction (overrides RON_JOBS). Results are \
           bit-identical at every job count.")

let set_jobs jobs =
  match jobs with
  | Some j when j < 1 -> failwith "--jobs must be >= 1"
  | _ -> Ron_util.Pool.set_default_jobs jobs

let ns_clock () = Int64.of_float (Unix.gettimeofday () *. 1e9)

(* Shared by every subcommand: configure the trace sink, the phase
   profiler, the telemetry sampler, the exposition writer, and/or the
   probes, run, then write the snapshot/profile/exposition and close the
   sinks (also on error, so a crashed run still leaves its artifacts on
   disk). Flag validation errors are user errors: stderr + exit 2, never
   an uncaught exception. *)
let with_obs trace metrics profile telemetry telemetry_interval expo f =
  if telemetry_interval < 1 then begin
    Printf.eprintf "--telemetry-interval %d: the interval must be >= 1 (milliseconds)\n"
      telemetry_interval;
    2
  end
  else
    (* Probe the exposition path up front: the first atomic write
       exercises both the temp file and the rename, so a bad path fails
       before any expensive construction. *)
    match
      match expo with
      | Some file -> ( try Ok (Ron_obs.Expo.write file) with Sys_error e -> Error e)
      | None -> Ok ()
    with
    | Error e ->
      Printf.eprintf "--expo: %s\n" e;
      2
    | Ok () ->
      (match trace with
      | Some file ->
        Ron_obs.Trace.configure ~clock:ns_clock (Ron_obs.Trace.channel_sink (open_out file))
      | None -> ());
      (match profile with
      | Some _ -> Ron_obs.Profile.enable ~clock:ns_clock ()
      | None -> ());
      (match telemetry with
      | Some file ->
        Ron_obs.Telemetry.start ~clock:ns_clock
          ~interval:(Int64.of_int (telemetry_interval * 1_000_000))
          ?expo
          (Ron_obs.Trace.channel_sink (open_out file))
      | None -> ());
      (* Telemetry and exposition need the probes on: counters, gauges and
         bucketed histograms are all recorded behind [Probe.on]. *)
      if trace <> None || metrics <> None || telemetry <> None || expo <> None then
        Ron_obs.enable ();
      Fun.protect
        ~finally:(fun () ->
          (match metrics with Some file -> Ron_obs.write_snapshot file | None -> ());
          (match expo with Some file -> Ron_obs.Expo.write file | None -> ());
          (match profile with
          | Some file ->
            Ron_obs.Profile.write file;
            Ron_obs.Profile.disable ()
          | None -> ());
          Ron_obs.Telemetry.stop ();
          Ron_obs.Trace.stop ())
        f

(* -------------------------------------------------------------- estimate *)

let run_estimate trace metrics profile telemetry telemetry_interval expo jobs family n seed delta pairs =
  set_jobs jobs;
  with_obs trace metrics profile telemetry telemetry_interval expo @@ fun () ->
  let idx = Indexed.create (make_metric family n seed) in
  let n = Indexed.size idx in
  Printf.printf "metric=%s n=%d log2(aspect)=%d\n" family n (Indexed.log2_aspect_ratio idx);
  let tri = Ron_labeling.Triangulation.build idx ~delta in
  let dls = Ron_labeling.Dls.build tri in
  Printf.printf "triangulation order=%d; Thm 3.4 max label = %d bits\n"
    (Ron_labeling.Triangulation.order tri)
    (Ron_labeling.Dls.max_label_bits dls);
  let rng = Rng.create (seed + 1) in
  let worst_tri = ref 1.0 and worst_dls = ref 1.0 in
  for _ = 1 to pairs do
    let u = Rng.int rng n and v = Rng.int rng n in
    if u <> v then begin
      let d = Indexed.dist idx u v in
      let (_, hi) = Ron_labeling.Triangulation.estimate tri u v in
      let e = Ron_labeling.Dls.estimate (Ron_labeling.Dls.label dls u) (Ron_labeling.Dls.label dls v) in
      worst_tri := Float.max !worst_tri (hi /. d);
      worst_dls := Float.max !worst_dls (e /. d)
    end
  done;
  Printf.printf "worst overestimate on %d pairs: triangulation %.4f, labels-only %.4f (bound %.4f)\n"
    pairs !worst_tri !worst_dls
    ((1.0 +. (2.0 *. delta)) *. (1.0 +. (delta /. 8.0)));
  0

let estimate_cmd =
  let doc = "Distance estimation: Theorem 3.2 triangulation + Theorem 3.4 labels." in
  Cmd.v (Cmd.info "estimate" ~doc)
    Term.(
      const run_estimate $ trace_arg $ metrics_arg $ profile_arg $ telemetry_arg $ telemetry_interval_arg $ expo_arg $ jobs_arg $ metric_arg $ n_arg $ seed_arg
      $ delta_arg $ pairs_arg)

(* ----------------------------------------------------------------- route *)

let scheme_arg =
  let doc = "Routing scheme: thm21 (graphs), thm41 (graphs), metric (Sec 4.1), thm42 (metric two-mode), trivial." in
  Arg.(value & opt string "thm21" & info [ "scheme" ] ~docv:"SCHEME" ~doc)

let run_route trace metrics profile telemetry telemetry_interval expo jobs family n seed delta pairs scheme =
  set_jobs jobs;
  with_obs trace metrics profile telemetry telemetry_interval expo @@ fun () ->
  let rng = Rng.create seed in
  let report ?parallel name route dist max_table header n =
    let prs = Ron_experiments.Exp_common.sample_pairs (Rng.create (seed + 2)) ~n ~count:pairs in
    let q = Ron_experiments.Exp_common.collect_routes ?parallel ~route ~dist prs in
    Printf.printf "%s: table<=%d bits, header<=%d bits\n  %s\n  %s\n" name max_table header
      (Ron_experiments.Exp_common.pp_quality q)
      (Ron_experiments.Exp_common.pp_observed q)
  in
  begin
    match scheme with
    | "metric" | "thm42" ->
      let idx = Indexed.create (make_metric family n seed) in
      let nn = Indexed.size idx in
      if scheme = "metric" then begin
        let s = Ron_routing.On_metric.build idx ~delta in
        report "Thm 2.1 on metric"
          (fun u v -> Ron_routing.On_metric.route s ~src:u ~dst:v)
          (fun u v -> Indexed.dist idx u v)
          (Array.fold_left max 0 (Ron_routing.On_metric.table_bits s))
          (Ron_routing.On_metric.header_bits s) nn
      end
      else begin
        let s = Ron_routing.Two_mode.build idx ~delta:(Float.min delta 0.125) in
        (* Two_mode.route counts mode switches in shared state: sequential. *)
        report ~parallel:false "Thm 4.2 two-mode"
          (fun u v -> Ron_routing.Two_mode.route s ~src:u ~dst:v)
          (fun u v -> Indexed.dist idx u v)
          (Array.fold_left max 0 (Ron_routing.Two_mode.table_bits_m1 s))
          (Ron_routing.Two_mode.header_bits s) nn;
        Printf.printf "  M2 switches: %d\n" (Ron_routing.Two_mode.mode2_switches s)
      end
    | "thm21" | "thm41" | "trivial" ->
      let g =
        match family with
        | "grid" ->
          let side = max 2 (int_of_float (sqrt (float_of_int n))) in
          Ron_graph.Graph_gen.grid side side
        | "expline" -> Ron_graph.Graph_gen.exponential_line_graph (min n 40)
        | _ -> Ron_graph.Graph_gen.random_geometric rng ~n ~radius:(2.0 /. sqrt (float_of_int n))
      in
      let sp = Ron_graph.Sp_metric.create g in
      let nn = Ron_graph.Graph.size g in
      let dist u v = Ron_graph.Sp_metric.dist sp u v in
      (match scheme with
      | "thm21" ->
        let s = Ron_routing.Basic.build sp ~delta:(Float.min delta 0.25) in
        report "Thm 2.1" (fun u v -> Ron_routing.Basic.route s ~src:u ~dst:v) dist
          (Array.fold_left max 0 (Ron_routing.Basic.table_bits s))
          (Ron_routing.Basic.header_bits s) nn
      | "thm41" ->
        let s = Ron_routing.Labelled.build sp ~delta in
        report "Thm 4.1" (fun u v -> Ron_routing.Labelled.route s ~src:u ~dst:v) dist
          (Array.fold_left max 0 (Ron_routing.Labelled.table_bits s))
          (Ron_routing.Labelled.header_bits s) nn
      | _ ->
        let s = Ron_routing.Full_table.build sp in
        report "stretch-1 trivial" (fun u v -> Ron_routing.Full_table.route s ~src:u ~dst:v) dist
          (Array.fold_left max 0 (Ron_routing.Full_table.table_bits s))
          (Ron_routing.Full_table.header_bits s) nn)
    | other -> failwith (Printf.sprintf "unknown scheme %S" other)
  end;
  0

let route_cmd =
  let doc = "Compact (1+delta)-stretch routing (Theorems 2.1, 4.1, 4.2; Section 4.1)." in
  Cmd.v (Cmd.info "route" ~doc)
    Term.(
      const run_route $ trace_arg $ metrics_arg $ profile_arg $ telemetry_arg $ telemetry_interval_arg $ expo_arg $ jobs_arg $ metric_arg $ n_arg $ seed_arg
      $ delta_arg $ pairs_arg $ scheme_arg)

(* ----------------------------------------------------------------- fault *)

let crash_arg =
  Arg.(
    value & opt float 0.05
    & info [ "crash" ] ~docv:"FRAC" ~doc:"Fraction of nodes crashed (seed-chosen, in [0,1)).")

let drop_arg =
  Arg.(
    value & opt float 0.01
    & info [ "drop" ] ~docv:"RATE" ~doc:"Per-hop Bernoulli message-drop rate (in [0,1)).")

let dead_links_arg =
  Arg.(
    value & opt float 0.0
    & info [ "dead-links" ] ~docv:"FRAC" ~doc:"Fraction of (undirected) links dead (in [0,1)).")

let fault_seed_arg =
  Arg.(
    value & opt int 4242
    & info [ "fault-seed" ] ~docv:"SEED"
        ~doc:"Seed of the fault model's dedicated random stream (independent of --seed).")

let run_fault trace metrics profile telemetry telemetry_interval expo jobs family n seed delta pairs scheme crash drop dead fseed =
  set_jobs jobs;
  with_obs trace metrics profile telemetry telemetry_interval expo @@ fun () ->
  let module Fault = Ron_fault.Fault in
  let module C = Ron_experiments.Exp_common in
  let rng = Rng.create seed in
  let report ?parallel name route_wrapped dist nn =
    let fault = Fault.make ~seed:fseed ~crash_fraction:crash ~drop_rate:drop
        ~dead_link_fraction:dead ~n:nn ()
    in
    let prs =
      List.filter
        (fun (u, v) -> not (Fault.crashed fault u || Fault.crashed fault v))
        (C.sample_pairs (Rng.create (seed + 2)) ~n:nn ~count:pairs)
    in
    let module Counter = Ron_obs.Counter in
    let module Probe = Ron_obs.Probe in
    let before name c = (name, Counter.value c) in
    let base =
      [
        before "drops injected" Probe.fault_drops;
        before "crashed hits" Probe.fault_crashed_hits;
        before "dead-link hits" Probe.fault_dead_links;
        before "retries" Probe.fault_retries;
        before "detours" Probe.fault_detours;
      ]
    in
    let q =
      C.collect_routes_keyed ?parallel
        ~route:(fun ~query u v -> route_wrapped (Fault.wrapper fault ~query) u v)
        ~dist prs
    in
    Printf.printf "%s under faults (%s)\n  %s\n  %s\n" name (Fault.describe fault)
      (C.pp_quality q) (C.pp_observed q);
    let delivered = q.C.queries - q.C.failures in
    Printf.printf "  delivery rate %.3f (%d/%d live pairs)\n"
      (float_of_int delivered /. float_of_int (max 1 q.C.queries))
      delivered q.C.queries;
    Printf.printf "  fault events:";
    List.iter
      (fun (nm, v0) ->
        let c =
          match nm with
          | "drops injected" -> Probe.fault_drops
          | "crashed hits" -> Probe.fault_crashed_hits
          | "dead-link hits" -> Probe.fault_dead_links
          | "retries" -> Probe.fault_retries
          | _ -> Probe.fault_detours
        in
        Printf.printf " %s %d" nm (Counter.value c - v0))
      base;
    print_newline ()
  in
  begin
    match scheme with
    | "thm42" ->
      let idx = Indexed.create (make_metric family n seed) in
      let nn = Indexed.size idx in
      let s = Ron_routing.Two_mode.build idx ~delta:(Float.min delta 0.125) in
      (* Two_mode.route counts mode switches in shared state: sequential. *)
      report ~parallel:false "Thm 4.2 two-mode"
        (fun w u v -> Ron_routing.Two_mode.route_wrapped w s ~src:u ~dst:v)
        (fun u v -> Indexed.dist idx u v)
        nn
    | "thm21" | "thm41" ->
      let g =
        match family with
        | "grid" ->
          let side = max 2 (int_of_float (sqrt (float_of_int n))) in
          Ron_graph.Graph_gen.grid side side
        | "expline" -> Ron_graph.Graph_gen.exponential_line_graph (min n 40)
        | _ -> Ron_graph.Graph_gen.random_geometric rng ~n ~radius:(2.0 /. sqrt (float_of_int n))
      in
      let sp = Ron_graph.Sp_metric.create g in
      let nn = Ron_graph.Graph.size g in
      let dist u v = Ron_graph.Sp_metric.dist sp u v in
      if scheme = "thm21" then begin
        let s = Ron_routing.Basic.build sp ~delta:(Float.min delta 0.25) in
        report "Thm 2.1"
          (fun w u v -> Ron_routing.Basic.route_wrapped w s ~src:u ~dst:v)
          dist nn
      end
      else begin
        let s = Ron_routing.Labelled.build sp ~delta in
        report "Thm 4.1"
          (fun w u v -> Ron_routing.Labelled.route_wrapped w s ~src:u ~dst:v)
          dist nn
      end
    | other -> failwith (Printf.sprintf "unknown scheme %S (fault supports thm21, thm41, thm42)" other)
  end;
  0

let fault_cmd =
  let doc =
    "Route under deterministic fault injection (crashed nodes, message drop, dead links) with \
     graceful-degradation fallbacks."
  in
  Cmd.v (Cmd.info "fault" ~doc)
    Term.(
      const run_fault $ trace_arg $ metrics_arg $ profile_arg $ telemetry_arg $ telemetry_interval_arg $ expo_arg $ jobs_arg $ metric_arg $ n_arg $ seed_arg
      $ delta_arg $ pairs_arg $ scheme_arg $ crash_arg $ drop_arg $ dead_links_arg
      $ fault_seed_arg)

(* ----------------------------------------------------------------- churn *)

let join_rate_arg =
  Arg.(
    value & opt float 0.05
    & info [ "join-rate" ] ~docv:"RATE"
        ~doc:"Per-slot probability that a departed node rejoins.")

let leave_rate_arg =
  Arg.(
    value & opt float 0.05
    & info [ "leave-rate" ] ~docv:"RATE"
        ~doc:"Per-slot probability that a live node leaves.")

let churn_seed_arg =
  Arg.(
    value & opt int 9191
    & info [ "churn-seed" ] ~docv:"SEED"
        ~doc:"Seed of the churn schedule's dedicated random stream (independent of --seed).")

let slots_arg =
  Arg.(
    value & opt int 120
    & info [ "slots" ] ~docv:"SLOTS" ~doc:"Event slots in the churn schedule.")

let run_churn trace metrics profile telemetry telemetry_interval expo jobs family n seed delta pairs
    scheme jrate lrate cseed slots crash drop dead fseed slo slo_out slo_window flight
    flight_trace_every =
  set_jobs jobs;
  with_obs trace metrics profile telemetry telemetry_interval expo @@ fun () ->
  let module Churn = Ron_churn.Churn in
  let module Fault = Ron_fault.Fault in
  let module Scheme = Ron_routing.Scheme in
  let module C = Ron_experiments.Exp_common in
  let module Counter = Ron_obs.Counter in
  let module Probe = Ron_obs.Probe in
  match make_observers ~slo ~slo_out ~slo_window ~flight ~flight_trace_every with
  | Error e ->
    prerr_endline e;
    2
  | Ok (slo_mon, flight_rec) ->
  let rng = Rng.create seed in
  let report ?parallel name ~tag ~make_repair route_wrapped dist nn =
    let sched =
      Churn.Schedule.make ~seed:cseed ~n:nn ~slots ~join_rate:jrate ~leave_rate:lrate ()
    in
    let st = Churn.state_of_schedule sched in
    let on_leave, on_join, backlog, stale_after = make_repair st in
    let was_on = !Probe.on in
    Probe.on := true;
    let summary =
      Fun.protect
        ~finally:(fun () -> Probe.on := was_on)
        (fun () -> Churn.Driver.apply sched st ~on_leave ~on_join ?backlog ())
    in
    (* Composable with the fault axis: churn detours innermost, fault
       injection on top. All-zero fault rates compose with the identity. *)
    let fault =
      if crash = 0.0 && drop = 0.0 && dead = 0.0 then None
      else
        Some
          (Fault.make ~seed:fseed ~crash_fraction:crash ~drop_rate:drop
             ~dead_link_fraction:dead ~n:nn ())
    in
    let prs =
      List.filter
        (fun (u, v) ->
          Churn.is_live st u && Churn.is_live st v
          && match fault with
             | None -> true
             | Some f -> not (Fault.crashed f u || Fault.crashed f v))
        (C.sample_pairs (Rng.create (seed + 2)) ~n:nn ~count:pairs)
    in
    let cw = Churn.wrapper st in
    let wrapper_for query =
      match fault with
      | None -> cw
      | Some f -> Scheme.compose (Fault.wrapper f ~query) cw
    in
    let before name c = (name, c, Counter.value c) in
    let base =
      [
        before "stale hits" Probe.churn_stale_hits;
        before "detours" Probe.churn_detours;
      ]
    in
    let q =
      C.collect_routes_keyed ?parallel
        ~route:(fun ~query u v -> route_wrapped (wrapper_for query) u v)
        ~dist prs
    in
    Printf.printf "%s under churn (%s)\n" name (Churn.Schedule.describe sched);
    (match fault with
    | Some f -> Printf.printf "  composed with %s\n" (Fault.describe f)
    | None -> ());
    Printf.printf "  %s\n  %s\n" (C.pp_quality q) (C.pp_observed q);
    let delivered = q.C.queries - q.C.failures in
    Printf.printf "  delivery rate %.3f (%d/%d live pairs), live nodes %d/%d\n"
      (float_of_int delivered /. float_of_int (max 1 q.C.queries))
      delivered q.C.queries (Churn.live_count st) nn;
    let ev = summary.Churn.Driver.joins + summary.Churn.Driver.leaves in
    Printf.printf "  repair: %d updates, %d refills, %d relabels over %d events (%.1f/ev), stale after %d\n"
      summary.Churn.Driver.cost.Churn.updates summary.Churn.Driver.cost.Churn.refills
      summary.Churn.Driver.cost.Churn.relabels ev
      (float_of_int summary.Churn.Driver.cost.Churn.updates /. float_of_int (max 1 ev))
      (stale_after ());
    Printf.printf "  churn events:";
    List.iter
      (fun (nm, c, v0) -> Printf.printf " %s %d" nm (Counter.value c - v0))
      base;
    print_newline ();
    (* Observed pass for the SLO monitor / flight recorder: sequential and
       wall-clocked — the monitor is single-feeder state, and the live
       churn schemes have no frozen scratch, so exemplars carry full
       context but no per-hop trace. *)
    match (slo_mon, flight_rec) with
    | None, None -> ()
    | _ ->
      List.iteri
        (fun i (u, v) ->
          let t0 = Unix.gettimeofday () in
          let r = route_wrapped (wrapper_for i) u v in
          let lat_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
          (match flight_rec with
          | Some fr ->
            let outcome =
              match r.Scheme.outcome with
              | Scheme.Delivered -> 0
              | Scheme.Truncated -> 1
              | Scheme.Self_forward -> 2
              | Scheme.Cycled -> 3
              | Scheme.Dropped -> 4
            in
            Ron_obs.Flight.record fr ~qid:i ~scheme:tag ~kind:0 ~src:u ~dst:v ~outcome
              ~hops:r.Scheme.hops ~lat:lat_ns ~trace:[||] ~trace_len:(-1)
          | None -> ());
          match slo_mon with
          | Some s -> Ron_obs.Slo.observe s ~lat:(float_of_int lat_ns) ~ok:r.Scheme.delivered
          | None -> ())
        prs
  in
  begin
    match scheme with
    | "thm42" ->
      let idx = Indexed.create (make_metric family n seed) in
      let nn = Indexed.size idx in
      let s = Ron_routing.Two_mode.build idx ~delta:(Float.min delta 0.125) in
      let x = Ron_routing.Two_mode.export s in
      let rows =
        Array.init nn (fun u ->
            let dirs = ref [] in
            for i = Array.length x.Ron_routing.Two_mode.x_hub_g - 1 downto 0 do
              let g = x.Ron_routing.Two_mode.x_hub_g.(i).(u) in
              if g >= 0 then
                dirs := x.Ron_routing.Two_mode.x_dir_members.(g) :: !dirs
            done;
            Array.concat (x.Ron_routing.Two_mode.x_hub_ptr.(u) :: !dirs))
      in
      let scales = Array.length x.Ron_routing.Two_mode.x_hub_g in
      report ~parallel:false "Thm 4.2 two-mode" ~tag:3
        ~make_repair:(fun st ->
          let ov = Churn.Overlay.create st rows ~relabel_cost:(fun _ -> scales) in
          ( (fun v -> Churn.Overlay.leave ov v),
            (fun v -> Churn.Overlay.join ov v),
            Some (fun () -> Churn.Overlay.backlog ov),
            fun () -> Churn.Overlay.stale_entries ov ))
        (fun w u v -> Ron_routing.Two_mode.route_wrapped w s ~src:u ~dst:v)
        (fun u v -> Indexed.dist idx u v)
        nn
    | "thm21" | "thm41" ->
      let g =
        match family with
        | "grid" ->
          let side = max 2 (int_of_float (sqrt (float_of_int n))) in
          Ron_graph.Graph_gen.grid side side
        | "expline" -> Ron_graph.Graph_gen.exponential_line_graph (min n 40)
        | _ -> Ron_graph.Graph_gen.random_geometric rng ~n ~radius:(2.0 /. sqrt (float_of_int n))
      in
      let sp = Ron_graph.Sp_metric.create g in
      let nn = Ron_graph.Graph.size g in
      let dist u v = Ron_graph.Sp_metric.dist sp u v in
      if scheme = "thm21" then begin
        let s = Ron_routing.Basic.build sp ~delta:(Float.min delta 0.25) in
        report "Thm 2.1" ~tag:1
          ~make_repair:(fun st ->
            let rr =
              Churn.Ring_repair.create st (Ron_routing.Basic.substrate s)
                (Ron_routing.Basic.rings_collection s)
            in
            ( (fun v -> Churn.Ring_repair.leave rr v),
              (fun v -> Churn.Ring_repair.join rr v),
              None,
              fun () -> Churn.Ring_repair.stale_members rr ))
          (fun w u v -> Ron_routing.Basic.route_wrapped w s ~src:u ~dst:v)
          dist nn
      end
      else begin
        let s = Ron_routing.Labelled.build sp ~delta in
        let rows = Array.init nn (fun u -> Ron_routing.Labelled.neighbors s u) in
        report "Thm 4.1" ~tag:2
          ~make_repair:(fun st ->
            let ov =
              Churn.Overlay.create st rows
                ~relabel_cost:(fun v -> Array.length rows.(v))
            in
            ( (fun v -> Churn.Overlay.leave ov v),
              (fun v -> Churn.Overlay.join ov v),
              Some (fun () -> Churn.Overlay.backlog ov),
              fun () -> Churn.Overlay.stale_entries ov ))
          (fun w u v -> Ron_routing.Labelled.route_wrapped w s ~src:u ~dst:v)
          dist nn
      end
    | other -> failwith (Printf.sprintf "unknown scheme %S (churn supports thm21, thm41, thm42)" other)
  end;
  (match slo_mon with Some s -> Ron_obs.Slo.finish s | None -> ());
  (match flight_rec with
  | Some fr ->
    let ex = Ron_obs.Flight.exemplar_count fr in
    if !Probe.on then Probe.flight_exemplar_level ex;
    Printf.printf "flight recorded=%d exemplars=%d\n" (Ron_obs.Flight.recorded fr) ex
  | None -> ());
  (match slo_mon with
  | Some s ->
    Printf.printf "slo %s: windows=%d violated=%d max_burn=%.3g ok=%b\n"
      (Ron_obs.Slo.spec s) (Ron_obs.Slo.windows_closed s) (Ron_obs.Slo.violated_windows s)
      (Ron_obs.Slo.max_burn s) (Ron_obs.Slo.ok s);
    (match slo_out with
    | Some file ->
      let fj = Option.map Ron_obs.Flight.to_json flight_rec in
      let oc = open_out file in
      Fun.protect
        ~finally:(fun () -> close_out oc)
        (fun () ->
          output_string oc (Ron_obs.Json.to_string (Ron_obs.Slo.to_json ?flight:fj s)))
    | None -> ())
  | None -> ());
  0

let churn_cmd =
  let doc =
    "Route under dynamic membership (seeded joins/leaves) with incremental ring repair; \
     composable with the fault-injection flags."
  in
  Cmd.v (Cmd.info "churn" ~doc)
    Term.(
      const run_churn $ trace_arg $ metrics_arg $ profile_arg $ telemetry_arg $ telemetry_interval_arg $ expo_arg $ jobs_arg $ metric_arg $ n_arg $ seed_arg
      $ delta_arg $ pairs_arg $ scheme_arg $ join_rate_arg $ leave_rate_arg $ churn_seed_arg
      $ slots_arg $ crash_arg $ drop_arg $ dead_links_arg $ fault_seed_arg
      $ slo_arg $ slo_out_arg $ slo_window_arg $ flight_arg $ flight_trace_every_arg)

(* ------------------------------------------------------------ smallworld *)

let model_arg =
  let doc = "Small-world model: a (Thm 5.2a), b (Thm 5.2b), structures, single (Thm 5.5 needs grid)." in
  Arg.(value & opt string "a" & info [ "model" ] ~docv:"MODEL" ~doc)

let run_smallworld trace metrics profile telemetry telemetry_interval expo jobs family n seed pairs model =
  set_jobs jobs;
  with_obs trace metrics profile telemetry telemetry_interval expo @@ fun () ->
  let idx = Indexed.create (make_metric family n seed) in
  let nn = Indexed.size idx in
  let mu = Measure.create idx (Net.Hierarchy.create idx) in
  let rng = Rng.create (seed + 3) in
  let route, (deg_max, deg_mean) =
    match model with
    | "a" ->
      let m = Ron_smallworld.Doubling_a.build idx mu (Rng.split rng) in
      ((fun u v -> Ron_smallworld.Doubling_a.route m ~src:u ~dst:v ~max_hops:300),
       Ron_smallworld.Doubling_a.out_degree m)
    | "b" ->
      let m = Ron_smallworld.Doubling_b.build idx mu (Rng.split rng) in
      ((fun u v -> Ron_smallworld.Doubling_b.route m ~src:u ~dst:v ~max_hops:300),
       Ron_smallworld.Doubling_b.out_degree m)
    | "structures" ->
      let m = Ron_smallworld.Structures.build idx (Rng.split rng) in
      ((fun u v -> Ron_smallworld.Structures.route m ~src:u ~dst:v ~max_hops:300),
       Ron_smallworld.Structures.out_degree m)
    | other -> failwith (Printf.sprintf "unknown model %S" other)
  in
  Printf.printf "model=%s n=%d out-degree max=%d mean=%.1f\n" model nn deg_max deg_mean;
  let fails = ref 0 and hmax = ref 0 and hsum = ref 0 and ok = ref 0 and ng = ref 0 in
  for _ = 1 to pairs do
    let u = Rng.int rng nn and v = Rng.int rng nn in
    if u <> v then begin
      let r = route u v in
      if r.Ron_smallworld.Sw_model.delivered then begin
        incr ok;
        hmax := max !hmax r.Ron_smallworld.Sw_model.hops;
        hsum := !hsum + r.Ron_smallworld.Sw_model.hops;
        ng := !ng + r.Ron_smallworld.Sw_model.nongreedy_hops
      end
      else incr fails
    end
  done;
  Printf.printf "lookups: mean %.2f hops, max %d, nongreedy %d, failed %d\n"
    (float_of_int !hsum /. float_of_int (max 1 !ok))
    !hmax !ng !fails;
  0

let smallworld_cmd =
  let doc = "Searchable small worlds on doubling metrics (Theorem 5.2, Section 5.2)." in
  Cmd.v (Cmd.info "smallworld" ~doc)
    Term.(
      const run_smallworld $ trace_arg $ metrics_arg $ profile_arg $ telemetry_arg $ telemetry_interval_arg $ expo_arg $ jobs_arg $ metric_arg $ n_arg $ seed_arg
      $ pairs_arg $ model_arg)

(* --------------------------------------------------------------- inspect *)

let run_inspect trace metrics profile telemetry telemetry_interval expo jobs family n seed =
  set_jobs jobs;
  with_obs trace metrics profile telemetry telemetry_interval expo @@ fun () ->
  let m = make_metric family n seed in
  (match Metric.check m with
  | Ok () -> ()
  | Error e -> Printf.printf "WARNING: metric check failed: %s\n" e);
  let idx = Indexed.create m in
  let rng = Rng.create (seed + 4) in
  let alpha = Doubling.dimension_estimate idx rng in
  let hier = Net.Hierarchy.create idx in
  let mu = Measure.create idx hier in
  Printf.printf "metric %s: n=%d\n" (Metric.name m) (Indexed.size idx);
  Printf.printf "  diameter %.3g, min distance %.3g, log2(aspect) %d\n" (Indexed.diameter idx)
    (Indexed.min_distance idx) (Indexed.log2_aspect_ratio idx);
  Printf.printf "  empirical doubling dimension ~ %.2f (Lemma 1.2 floor: %.2f)\n" alpha
    (Ron_util.Bits.flog2 (float_of_int (Indexed.size idx))
    /. (1.0 +. Ron_util.Bits.flog2 (Float.max 2.0 (Indexed.aspect_ratio idx))));
  Printf.printf "  net hierarchy: %d levels; level sizes:" (Net.Hierarchy.jmax hier + 1);
  for j = 0 to Net.Hierarchy.jmax hier do
    Printf.printf " %d" (Array.length (Net.Hierarchy.level hier j))
  done;
  Printf.printf "\n  doubling measure: constant ~ %.1f\n"
    (Measure.doubling_constant_estimate mu idx rng);
  0

let inspect_cmd =
  let doc = "Print substrate facts (dimension, nets, doubling measure) about a metric." in
  Cmd.v (Cmd.info "inspect" ~doc)
    Term.(const run_inspect $ trace_arg $ metrics_arg $ profile_arg $ telemetry_arg $ telemetry_interval_arg $ expo_arg $ jobs_arg $ metric_arg $ n_arg $ seed_arg)

(* ----------------------------------------------------------------- serve *)

let serve_scheme_arg =
  let doc =
    Printf.sprintf "Scheme to serve: %s." (String.concat ", " Ron_serve.Fixture.names)
  in
  Arg.(value & opt string "basic" & info [ "scheme" ] ~docv:"SCHEME" ~doc)

let snapshot_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "snapshot" ] ~docv:"FILE"
        ~doc:"Freeze the built scheme into an off-heap snapshot at $(docv).")

let load_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "load" ] ~docv:"FILE"
        ~doc:"Serve from an existing snapshot instead of building (cold start).")

let queries_arg =
  Arg.(value & opt int 100_000 & info [ "queries" ] ~docv:"Q" ~doc:"Queries to serve.")

let batch_arg =
  Arg.(
    value
    & opt int Ron_serve.Loop.default_batch
    & info [ "batch" ] ~docv:"B" ~doc:"Batch size sharded across worker domains.")

let zipf_arg =
  Arg.(
    value & opt float 1.1
    & info [ "zipf" ] ~docv:"S" ~doc:"Zipf exponent of the target-popularity skew.")

let mix_arg =
  Arg.(
    value & opt string "0.6,0.3,0.1"
    & info [ "mix" ] ~docv:"R,D,L"
        ~doc:
          "Traffic mix as comma-separated route,dist,locate weights (normalized; each scheme \
           collapses unsupported kinds onto its native operation).")

(* Validation errors are user errors: report on stderr and exit 2, never an
   uncaught exception (exit 125). [Error] carries the message. *)
let parse_mix s =
  match String.split_on_char ',' s with
  | [ a; b; c ] -> (
    match (float_of_string_opt a, float_of_string_opt b, float_of_string_opt c) with
    | Some r, Some d, Some l
      when Float.is_finite r && Float.is_finite d && Float.is_finite l
           && r >= 0.0 && d >= 0.0 && l >= 0.0 && r +. d +. l > 0.0 ->
      let t = r +. d +. l in
      Ok (r /. t, d /. t)
    | _ ->
      Error
        (Printf.sprintf
           "--mix %S: weights must be finite and non-negative with a positive sum" s))
  | _ -> Error "--mix expects three comma-separated weights, e.g. 0.6,0.3,0.1"

let run_serve trace metrics profile telemetry telemetry_interval expo jobs scheme n seed snapshot
    load queries batch zipf mix slo slo_out slo_window flight flight_trace_every =
  set_jobs jobs;
  with_obs trace metrics profile telemetry telemetry_interval expo @@ fun () ->
  let module Server = Ron_serve.Server in
  let module Loop = Ron_serve.Loop in
  match parse_mix mix with
  | Error e ->
    prerr_endline e;
    2
  | Ok (route_frac, dist_frac) ->
  if not (Float.is_finite zipf && zipf > 0.0) then begin
    Printf.eprintf "--zipf %g: the exponent must be finite and positive\n" zipf;
    2
  end
  else if queries < 0 || batch < 0 then begin
    Printf.eprintf "--queries and --batch must be non-negative\n";
    2
  end
  else begin
  match make_observers ~slo ~slo_out ~slo_window ~flight ~flight_trace_every with
  | Error e ->
    prerr_endline e;
    2
  | Ok (slo_mon, flight_rec) ->
  let t =
    match load with
    | Some file ->
      (match Server.load file with
      | Ok t -> t
      | Error e -> failwith (Printf.sprintf "cannot load snapshot %s: %s" file e))
    | None ->
      let t = Ron_serve.Fixture.build ~scheme ~n ~seed in
      (match snapshot with Some file -> Server.save t file | None -> ());
      t
  in
  let nodes = Server.size t in
  Printf.printf "serve scheme=%s nodes=%d snapshot=%d bytes (%.1f bytes/node)\n"
    (Server.scheme_name t) nodes (Server.byte_size t)
    (float_of_int (Server.byte_size t) /. float_of_int (max 1 nodes));
  if queries = 0 || batch = 0 then begin
    (* Nothing to serve: an empty-but-valid report, not a spin or a crash. *)
    Printf.printf "queries=0 batch=%d elapsed=0.000s qps=0 digest=0\n" batch;
    Printf.printf "latency p50=0ns p99=0ns p999=0ns\n";
    0
  end
  else begin
    let work = Loop.prepare t ~seed ~queries ~zipf_s:zipf ~route_frac ~dist_frac in
    let res = Loop.results_create queries in
    let t0 = Unix.gettimeofday () in
    (match (slo_mon, flight_rec) with
    | None, None -> Loop.run ~batch t work res
    | _ -> Loop.run_observed ~batch ~wall:true ?flight:flight_rec ?slo:slo_mon t work res);
    let dt = Unix.gettimeofday () -. t0 in
    let qps = float_of_int queries /. Float.max dt 1e-9 in
    Printf.printf "queries=%d batch=%d elapsed=%.3fs qps=%.0f digest=%x\n" queries batch dt qps
      (Loop.digest res);
    let hist = Ron_obs.Histogram.Bucketed.make "serve.latency_ns" in
    Loop.measure_latency ~limit:(min queries 20_000) t work res hist;
    let q p = Ron_obs.Histogram.Bucketed.quantile hist p in
    Printf.printf "latency p50=%.0fns p99=%.0fns p999=%.0fns\n" (q 0.5) (q 0.99) (q 0.999);
    (match flight_rec with
    | Some fr ->
      let ex = Ron_obs.Flight.exemplar_count fr in
      let traced =
        List.fold_left
          (fun a (_, es) ->
            a
            + List.length
                (List.filter (fun x -> x.Ron_obs.Flight.x_trace <> None) es))
          0 (Ron_obs.Flight.dump fr)
      in
      if !Ron_obs.Probe.on then Ron_obs.Probe.flight_exemplar_level ex;
      Printf.printf "flight recorded=%d exemplars=%d traced=%d\n"
        (Ron_obs.Flight.recorded fr) ex traced
    | None -> ());
    (match slo_mon with
    | Some s ->
      Printf.printf "slo %s: windows=%d violated=%d max_burn=%.3g ok=%b\n"
        (Ron_obs.Slo.spec s) (Ron_obs.Slo.windows_closed s)
        (Ron_obs.Slo.violated_windows s) (Ron_obs.Slo.max_burn s) (Ron_obs.Slo.ok s);
      (match slo_out with
      | Some file ->
        let fj = Option.map Ron_obs.Flight.to_json flight_rec in
        let oc = open_out file in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () ->
            output_string oc (Ron_obs.Json.to_string (Ron_obs.Slo.to_json ?flight:fj s)))
      | None -> ())
    | None -> ());
    0
  end
  end

let serve_cmd =
  let doc =
    "Serve batched distance/route/locate queries from a frozen off-heap scheme snapshot."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ trace_arg $ metrics_arg $ profile_arg $ telemetry_arg $ telemetry_interval_arg $ expo_arg $ jobs_arg $ serve_scheme_arg $ n_arg $ seed_arg
      $ snapshot_arg $ load_arg $ queries_arg $ batch_arg $ zipf_arg $ mix_arg
      $ slo_arg $ slo_out_arg $ slo_window_arg $ flight_arg $ flight_trace_every_arg)

(* ------------------------------------------------------------ experiment *)

let experiment_ids =
  [
    "t1"; "t2"; "t3"; "e21"; "e32"; "e34"; "e41"; "e52a"; "e52b"; "e54"; "e55"; "esub"; "fig1";
    "mer"; "fault"; "scale"; "churn";
  ]

let run_experiment trace metrics profile telemetry telemetry_interval expo jobs id =
  set_jobs jobs;
  with_obs trace metrics profile telemetry telemetry_interval expo @@ fun () ->
  let module E = Ron_experiments in
  let table =
    [
      ("t1", E.Exp_t1.run); ("t2", E.Exp_t2.run); ("t3", E.Exp_t3.run);
      ("e21", E.Exp_e21.run); ("e32", E.Exp_e32.run); ("e34", E.Exp_e34.run);
      ("e41", E.Exp_e41.run); ("e52a", E.Exp_e52.run_a); ("e52b", E.Exp_e52.run_b);
      ("e54", E.Exp_e54.run); ("e55", E.Exp_e55.run); ("esub", E.Exp_esub.run); ("mer", E.Exp_mer.run);
      ("fig1", E.Exp_fig1.run); ("fault", E.Exp_fault.run); ("scale", E.Exp_scale.run);
      ("churn", E.Exp_churn.run);
    ]
  in
  match List.assoc_opt id table with
  | Some run ->
    run ();
    0
  | None ->
    Printf.eprintf "unknown experiment %S; one of: %s\n" id (String.concat ", " experiment_ids);
    1

let experiment_cmd =
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let doc = "Run one reproduction experiment (same ids as bench/main.exe)." in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(const run_experiment $ trace_arg $ metrics_arg $ profile_arg $ telemetry_arg $ telemetry_interval_arg $ expo_arg $ jobs_arg $ id)

let () =
  let doc = "rings of neighbors: distance estimation and object location (Slivkins, PODC 2005)" in
  let info = Cmd.info "ron" ~version:"1.0.0" ~doc in
  let default = Term.(ret (const (`Help (`Pager, None)))) in
  exit
    (Cmd.eval'
       (Cmd.group ~default info
          [ estimate_cmd; route_cmd; fault_cmd; churn_cmd; smallworld_cmd; inspect_cmd; serve_cmd; experiment_cmd ]))
