(* Benchmark & reproduction harness.

   Usage:
     dune exec bench/main.exe            -- run every experiment + micro-benchmarks
     dune exec bench/main.exe t1 e32     -- run selected experiment ids
     dune exec bench/main.exe list       -- list experiment ids
     dune exec bench/main.exe -- --json BENCH.json [--sizes 500,1000,2000]
                                         -- machine-readable perf report
                                            (combinable with experiment ids)
     dune exec bench/main.exe -- --json B.json --scale-only --scale 100000
                                         -- only the near-linear "scale"
                                            section (the CI scale smoke)
     ... --json B.json --telemetry T.jsonl [--telemetry-interval MS]
                                         -- sample runtime telemetry (counter
                                            deltas, gauges, GC, RSS) as JSONL
                                            while the report is measured

   One section is printed per paper artifact (table / figure / theorem); see
   DESIGN.md section 3 for the index and EXPERIMENTS.md for the recorded
   paper-vs-measured discussion. *)

module E = Ron_experiments

let experiments : (string * string * (unit -> unit)) list =
  [
    ("t1", "Table 1: routing schemes on doubling graphs", E.Exp_t1.run);
    ("t2", "Table 2: routing schemes on doubling metrics", E.Exp_t2.run);
    ("t3", "Table 3: the two routing modes of Theorem 4.2/B.1", E.Exp_t3.run);
    ("e21", "Theorem 2.1: stretch sweep", E.Exp_e21.run);
    ("e32", "Theorem 3.2: (0,delta)-triangulation", E.Exp_e32.run);
    ("e34", "Theorem 3.4: distance labels vs aspect ratio", E.Exp_e34.run);
    ("e41", "Theorem 4.1: headers vs aspect ratio", E.Exp_e41.run);
    ("e52a", "Theorem 5.2a: greedy small worlds", E.Exp_e52.run_a);
    ("e52b", "Theorem 5.2b: sqrt(log Delta) out-degree", E.Exp_e52.run_b);
    ("e54", "Theorem 5.4: comparison with STRUCTURES", E.Exp_e54.run);
    ("e55", "Theorem 5.5: single long-range contact", E.Exp_e55.run);
    ("esub", "Substrate lemmas (1.1-1.4, 1.3, 3.1/A.1)", E.Exp_esub.run);
    ("fig1", "Figure 1: flow of ideas as live dependencies", E.Exp_fig1.run);
    ("mer", "Meridian-style object location over rings (Sec 6)", E.Exp_mer.run);
    ("fault", "Fault injection & graceful degradation sweep", E.Exp_fault.run);
    ("scale", "Scaling regime: landmark labels over the on-demand oracle", E.Exp_scale.run);
    ("churn", "Dynamic membership: joins/leaves with incremental repair", E.Exp_churn.run);
  ]

(* ------------------------------------------------- Bechamel micro-benches *)

let micro () =
  let open Bechamel in
  let module Rng = Ron_util.Rng in
  let module Indexed = Ron_metric.Indexed in
  let module Generators = Ron_metric.Generators in
  let module Net = Ron_metric.Net in
  let module Measure = Ron_metric.Measure in
  let module Packing = Ron_metric.Packing in
  Printf.printf "\n================================================================================\n";
  Printf.printf "[MICRO] Bechamel micro-benchmarks (construction and query costs)\n";
  Printf.printf "================================================================================\n";
  let rng = Rng.create 7 in
  let idx = Indexed.create (Generators.random_cloud rng ~n:100 ~dim:2) in
  let hier = Net.Hierarchy.create idx in
  let mu = Measure.create idx hier in
  let tri = Ron_labeling.Triangulation.build idx ~delta:0.25 in
  let dls = Ron_labeling.Dls.build tri in
  let om = Ron_routing.On_metric.build idx ~delta:0.25 in
  let sp = Ron_graph.Sp_metric.create (Ron_graph.Graph_gen.grid 8 8) in
  let basic = Ron_routing.Basic.build sp ~delta:0.25 in
  let sw = Ron_smallworld.Doubling_a.build idx mu (Rng.split rng) in
  let qrng = Rng.create 77 in
  let tests =
    Test.make_grouped ~name:"rings-of-neighbors"
      [
        Test.make ~name:"indexed.create(n=100)" (Staged.stage (fun () -> Indexed.create (Indexed.metric idx)));
        Test.make ~name:"net-hierarchy.create" (Staged.stage (fun () -> Net.Hierarchy.create idx));
        Test.make ~name:"doubling-measure.create" (Staged.stage (fun () -> Measure.create idx hier));
        Test.make ~name:"packing.create(eps=1/8)" (Staged.stage (fun () -> Packing.create idx ~eps:0.125));
        Test.make ~name:"triangulation.estimate"
          (Staged.stage (fun () ->
               let u = Rng.int qrng 100 and v = Rng.int qrng 100 in
               ignore (Ron_labeling.Triangulation.estimate tri u v)));
        Test.make ~name:"dls.estimate(label-only)"
          (Staged.stage (fun () ->
               let u = Rng.int qrng 100 and v = Rng.int qrng 100 in
               ignore
                 (Ron_labeling.Dls.estimate (Ron_labeling.Dls.label dls u)
                    (Ron_labeling.Dls.label dls v))));
        Test.make ~name:"route.on-metric"
          (Staged.stage (fun () ->
               let u = Rng.int qrng 100 and v = Rng.int qrng 100 in
               if u <> v then ignore (Ron_routing.On_metric.route om ~src:u ~dst:v)));
        Test.make ~name:"route.thm2.1-graph"
          (Staged.stage (fun () ->
               let u = Rng.int qrng 64 and v = Rng.int qrng 64 in
               if u <> v then ignore (Ron_routing.Basic.route basic ~src:u ~dst:v)));
        Test.make ~name:"route.smallworld-greedy"
          (Staged.stage (fun () ->
               let u = Rng.int qrng 100 and v = Rng.int qrng 100 in
               if u <> v then
                 ignore (Ron_smallworld.Doubling_a.route sw ~src:u ~dst:v ~max_hops:100)));
      ]
  in
  let benchmark () =
    let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~kde:(Some 100) () in
    Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] tests
  in
  let analyze raw =
    let ols =
      Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Bechamel.Measure.run |]
    in
    Analyze.all ols Toolkit.Instance.monotonic_clock raw
  in
  let results = analyze (benchmark ()) in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  let rows = List.sort (fun (a, _) (b, _) -> String.compare a b) rows in
  Printf.printf "%-48s %s\n" "benchmark" "ns/run";
  Printf.printf "%s\n" (String.make 70 '-');
  List.iter
    (fun (name, ols) ->
      let est =
        match Bechamel.Analyze.OLS.estimates ols with
        | Some [ e ] -> Printf.sprintf "%12.1f" e
        | _ -> "?"
      in
      Printf.printf "%-48s %s\n" name est)
    rows

let parse_sizes s =
  try
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun x -> x <> "")
    |> List.map int_of_string
  with Failure _ ->
    Printf.eprintf "bad --sizes %S (expected e.g. 500,1000,2000)\n" s;
    exit 1

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let json_file = ref None and sizes = ref [ 500; 1000; 2000 ] in
  let scale_sizes = ref [ 10_000 ] and scale_only = ref false in
  let telemetry = ref None and telemetry_interval = ref 500 in
  let rec strip_flags = function
    | [] -> []
    | "--json" :: file :: rest ->
      json_file := Some file;
      strip_flags rest
    | [ "--json" ] ->
      Printf.eprintf "--json requires a file argument\n";
      exit 1
    | "--telemetry" :: file :: rest ->
      telemetry := Some file;
      strip_flags rest
    | [ "--telemetry" ] ->
      Printf.eprintf "--telemetry requires a file argument\n";
      exit 1
    | "--telemetry-interval" :: ms :: rest ->
      (match int_of_string_opt ms with
      | Some v when v >= 1 -> telemetry_interval := v
      | _ ->
        Printf.eprintf "bad --telemetry-interval %S (expected milliseconds >= 1)\n" ms;
        exit 1);
      strip_flags rest
    | [ "--telemetry-interval" ] ->
      Printf.eprintf "--telemetry-interval requires a milliseconds argument\n";
      exit 1
    | "--sizes" :: spec :: rest ->
      sizes := parse_sizes spec;
      strip_flags rest
    | [ "--sizes" ] ->
      Printf.eprintf "--sizes requires a comma-separated list (e.g. 500,1000,2000)\n";
      exit 1
    | "--scale" :: spec :: rest ->
      scale_sizes := parse_sizes spec;
      strip_flags rest
    | [ "--scale" ] ->
      Printf.eprintf "--scale requires a comma-separated list (e.g. 10000,100000)\n";
      exit 1
    | "--scale-only" :: rest ->
      scale_only := true;
      strip_flags rest
    | arg :: rest -> arg :: strip_flags rest
  in
  let ids = strip_flags args in
  (match (ids, !json_file) with
   | ([ "list" ], None) ->
     List.iter (fun (id, title, _) -> Printf.printf "%-6s %s\n" id title) experiments;
     Printf.printf "%-6s %s\n" "micro" "Bechamel micro-benchmarks"
   | ([], None) ->
     List.iter (fun (_, _, run) -> run ()) experiments;
     micro ()
   | ([], Some _) -> () (* JSON report only *)
   | (ids, _) ->
     List.iter
       (fun id ->
         if id = "micro" then micro ()
         else begin
           match List.find_opt (fun (i, _, _) -> i = id) experiments with
           | Some (_, _, run) -> run ()
           | None ->
             Printf.eprintf "unknown experiment id %S (try: dune exec bench/main.exe list)\n" id;
             exit 1
         end)
       ids);
  match !json_file with
  | Some file ->
    Bench_json.run ~scale_sizes:!scale_sizes ~scale_only:!scale_only
      ?telemetry:!telemetry ~telemetry_interval_ms:!telemetry_interval ~file ~sizes:!sizes ()
  | None ->
    if !telemetry <> None then begin
      Printf.eprintf "--telemetry requires --json (the sampler rides along the bench report)\n";
      exit 1
    end
