(* Source of the EXPERIMENTS.md per-phase construction table: build the
   four schemes at n ~ 1000 with the phase profiler on a real clock and
   print the aggregate table (count, total/self ms, allocation, GC counts
   per phase).

   Run:  dune exec bench/profile_phases.exe

   The Thm 2.1 scheme builds on a 31x31 grid (961 nodes) and Meridian
   populates rings over a 1000-point random cloud with every node a
   member. The Thm 4.1 and two-mode schemes run on a 14x14 grid (n=196):
   both are super-quadratic builds (labelled ~10 s at n=100 vs ~66 s at
   n=196; two-mode ~6.5 s vs ~80 s — each would take an hour or more at
   n~1000), which is why the reproduction tables run them on small
   instances and why they get one here. The table this prints is the
   point: it shows the time is not where the scheme-specific code is —
   both are dominated by the nested construct.dls label build, and
   Thm 2.1 by construct.structure. Wall times are machine-dependent; the
   phase *structure* (paths, counts, allocation) is the reproducible
   part. *)

let ns_clock () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let () =
  let module Profile = Ron_obs.Profile in
  let module Indexed = Ron_metric.Indexed in
  Profile.enable ~clock:ns_clock ();
  let sp_big = Ron_graph.Sp_metric.create (Ron_graph.Graph_gen.grid 31 31) in
  ignore (Ron_routing.Basic.build sp_big ~delta:0.25);
  let sp_small = Ron_graph.Sp_metric.create (Ron_graph.Graph_gen.grid 14 14) in
  ignore (Ron_routing.Labelled.build sp_small ~delta:0.5);
  let idx = Indexed.create (Ron_metric.Generators.grid2d 14 14) in
  ignore (Ron_routing.Two_mode.build idx ~delta:0.125);
  let cloud =
    Indexed.create
      (Ron_metric.Generators.random_cloud (Ron_util.Rng.create 7) ~n:1000 ~dim:2)
  in
  ignore
    (Ron_smallworld.Meridian.build cloud (Ron_util.Rng.create 9) ~ring_size:8
       ~members:(Array.init (Indexed.size cloud) Fun.id));
  Profile.disable ();
  Printf.printf
    "phase profile: Thm 2.1 on grid 31x31 (961 nodes), Thm 4.1 / two-mode on grid 14x14 \
     (196), Meridian cloud n=1000 (RON_JOBS=%d)\n\n"
    (Ron_util.Pool.jobs ());
  Profile.pp stdout
