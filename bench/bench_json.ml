(* Machine-readable performance report: construction/query timings for the
   metric-index hot path (seed baseline vs optimized, sequential vs
   parallel) plus the headline Table 1-3 quantities, emitted as JSON so
   successive PRs accumulate a perf trajectory (see EXPERIMENTS.md,
   "Performance"). The encoder is Ron_obs.Json, shared with the CLI's
   --metrics-out; no external JSON dependency. *)

module Rng = Ron_util.Rng
module Pool = Ron_util.Pool
module Exp_common = Ron_experiments.Exp_common
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
open Ron_obs.Json

let to_string = Ron_obs.Json.to_string

(* ---------------------------------------------------------------- timing *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let time_unit f = snd (time f)

(* ----------------------------------------------------- index hot path *)

let index_same a b =
  let n = Indexed.size a in
  let ok = ref (n = Indexed.size b) in
  for u = 0 to n - 1 do
    for k = 0 to n - 1 do
      let (va, da) = Indexed.nth_neighbor a u k and (vb, db) = Indexed.nth_neighbor b u k in
      if va <> vb || da <> db then ok := false
    done
  done;
  !ok

let index_section n =
  let m = Generators.random_cloud (Rng.create 7) ~n ~dim:2 in
  let (reference, t_ref) = time (fun () -> Indexed.create_reference m) in
  let (seq, t_seq) = time (fun () -> Indexed.create ~jobs:1 m) in
  let (par, t_par) = time (fun () -> Indexed.create m) in
  let equal = index_same reference seq && index_same seq par in
  (* Query costs over the optimized index. *)
  let qrng = Rng.create 77 in
  let queries = 200_000 in
  let diam = Indexed.diameter par in
  let t_ball_count =
    time_unit (fun () ->
        for _ = 1 to queries do
          ignore (Indexed.ball_count par (Rng.int qrng n) (Rng.float qrng diam))
        done)
  in
  let t_radius =
    time_unit (fun () ->
        for _ = 1 to queries do
          ignore (Indexed.radius_for_count par (Rng.int qrng n) (1 + Rng.int qrng n))
        done)
  in
  let hier, t_hier = time (fun () -> Net.Hierarchy.create par) in
  let t_measure = time_unit (fun () -> ignore (Measure.create par hier)) in
  Obj
    [
      ("n", Int n);
      ("indexed_create_reference_s", Float t_ref);
      ("indexed_create_jobs1_s", Float t_seq);
      ("indexed_create_parallel_s", Float t_par);
      ("speedup_jobs1_vs_reference", Float (t_ref /. t_seq));
      ("speedup_parallel_vs_reference", Float (t_ref /. t_par));
      ("parallel_equals_sequential_equals_reference", Bool equal);
      ("ball_count_ns_per_query", Float (t_ball_count *. 1e9 /. float_of_int queries));
      ("radius_for_count_ns_per_query", Float (t_radius *. 1e9 /. float_of_int queries));
      ("net_hierarchy_create_s", Float t_hier);
      ("measure_create_s", Float t_measure);
    ]

(* ------------------------------------------------- graph-side hot path *)

module Dijkstra = Ron_graph.Dijkstra

(* Flat apsp vs the boxed reference, by exact float equality. *)
let apsp_matches_reference ap ref_ap =
  let n = Dijkstra.size ap in
  let ok = ref (n = Array.length ref_ap) in
  for u = 0 to n - 1 do
    let s = ref_ap.(u) in
    for v = 0 to n - 1 do
      if
        (not (Float.equal (Dijkstra.distance ap u v) s.Dijkstra.dist.(v)))
        || Dijkstra.first_hop ap u v <> s.Dijkstra.first_hop.(v)
      then ok := false
    done
  done;
  !ok

let apsp_same a b =
  let n = Dijkstra.size a in
  let ok = ref (n = Dijkstra.size b) in
  for u = 0 to n - 1 do
    for v = 0 to n - 1 do
      if
        (not (Float.equal (Dijkstra.distance a u v) (Dijkstra.distance b u v)))
        || Dijkstra.first_hop a u v <> Dijkstra.first_hop b u v
      then ok := false
    done
  done;
  !ok

(* Peak resident set size in kB: the kernel's VmHWM high-water mark where
   /proc exists, getrusage max-RSS elsewhere — Ron_obs.Rss normalises
   units, so the column survives on non-Linux hosts too. *)
let peak_rss_kb () = Ron_obs.Rss.peak_kb ()

let graph_apsp_section n =
  (* Square grid with about n nodes: the experiments' canonical graph. *)
  let side = max 2 (int_of_float (Float.round (sqrt (float_of_int n)))) in
  let g = Ron_graph.Graph_gen.grid side side in
  (* Compact first: the index sections leave a large, fragmented major heap,
     and multi-domain minor collections pay for it in stop-the-world time —
     which would bill earlier sections' garbage to the jobs=4 rows. *)
  Gc.compact ();
  (* Five timing rounds, the four variants interleaved round-robin within
     each round, minimum per variant kept. One all-pairs allocates tens of
     MB, so single-shot timings are dominated by GC/paging state, and on a
     shared host a contention burst can span several consecutive runs —
     interleaving gives every variant a sample in each burst-free window,
     keeping the per-variant minima comparable. *)
  let rounds = 5 in
  let (ref_ap, t0_ref) = time (fun () -> Dijkstra.all_pairs_reference g) in
  let (a1, t0_j1) = time (fun () -> Dijkstra.all_pairs ~jobs:1 g) in
  let (a4, t0_j4) = time (fun () -> Dijkstra.all_pairs ~jobs:4 g) in
  let (ap, t0_par) = time (fun () -> Dijkstra.all_pairs g) in
  let t_ref = ref t0_ref and t_j1 = ref t0_j1 in
  let t_j4 = ref t0_j4 and t_par = ref t0_par in
  for _ = 2 to rounds do
    t_ref := Float.min !t_ref (time_unit (fun () -> ignore (Dijkstra.all_pairs_reference g)));
    t_j1 := Float.min !t_j1 (time_unit (fun () -> ignore (Dijkstra.all_pairs ~jobs:1 g)));
    t_j4 := Float.min !t_j4 (time_unit (fun () -> ignore (Dijkstra.all_pairs ~jobs:4 g)));
    t_par := Float.min !t_par (time_unit (fun () -> ignore (Dijkstra.all_pairs g)))
  done;
  let t_ref = !t_ref and t_j1 = !t_j1 and t_j4 = !t_j4 and t_par = !t_par in
  let equal = apsp_matches_reference a1 ref_ap && apsp_same a1 a4 && apsp_same a1 ap in
  Obj
    [
      ("nodes", Int (side * side));
      ("all_pairs_reference_s", Float t_ref);
      ("all_pairs_jobs1_s", Float t_j1);
      ("all_pairs_jobs4_s", Float t_j4);
      ("all_pairs_parallel_s", Float t_par);
      ("speedup_jobs1_vs_reference", Float (t_ref /. t_j1));
      ("speedup_jobs4_vs_reference", Float (t_ref /. t_j4));
      ("speedup_parallel_vs_reference", Float (t_ref /. t_par));
      ("jobs_bit_identical_and_matches_reference", Bool equal);
    ]

(* Construction timings for the graph-side schemes at a fixed size: the
   per-node table/label/ring builds this PR moved behind the pool. *)
let graph_construction_section () =
  let g = Ron_graph.Graph_gen.grid 12 12 in
  let (sp, t_sp) = time (fun () -> Ron_graph.Sp_metric.create g) in
  let t_basic = time_unit (fun () -> ignore (Ron_routing.Basic.build sp ~delta:0.25)) in
  let t_labelled = time_unit (fun () -> ignore (Ron_routing.Labelled.build sp ~delta:0.5)) in
  let idx = Indexed.create (Generators.grid2d 12 12) in
  let (tri, t_tri) = time (fun () -> Ron_labeling.Triangulation.build idx ~delta:0.22) in
  let t_dls = time_unit (fun () -> ignore (Ron_labeling.Dls.build tri)) in
  let t_meridian =
    time_unit (fun () ->
        ignore
          (Ron_smallworld.Meridian.build idx (Rng.create 9) ~ring_size:4
             ~members:(Array.init (Indexed.size idx) Fun.id)))
  in
  (* Oracle row-cache behaviour on a deterministic single-domain access
     pattern: capacity 4, three rounds of two hot sources plus one cold
     one, so hits, builds and evictions are all exercised and the counts
     are exact constants (6 builds, 6 hits, 2 evictions). *)
  let oracle =
    let module Probe = Ron_obs.Probe in
    let module Counter = Ron_obs.Counter in
    let o = Dijkstra.Oracle.create ~capacity:4 g in
    let h0 = Counter.value Probe.oracle_hits
    and b0 = Counter.value Probe.oracle_builds
    and e0 = Counter.value Probe.oracle_evicts in
    let was_on = !Probe.on in
    Probe.on := true;
    List.iter
      (fun s -> ignore (Dijkstra.Oracle.distances o s))
      [ 0; 1; 2; 3; 0; 1; 4; 0; 1; 5; 0; 1 ];
    Probe.on := was_on;
    Obj
      [
        ("capacity", Int (Dijkstra.Oracle.capacity o));
        ("row_hits", Int (Counter.value Probe.oracle_hits - h0));
        ("row_builds", Int (Counter.value Probe.oracle_builds - b0));
        ("row_evicts", Int (Counter.value Probe.oracle_evicts - e0));
      ]
  in
  let fields =
    [
      ("nodes", Int (Ron_graph.Graph.size g));
      ("sp_metric_create_s", Float t_sp);
      ("basic_build_s", Float t_basic);
      ("labelled_build_s", Float t_labelled);
      ("triangulation_build_s", Float t_tri);
      ("dls_build_s", Float t_dls);
      ("meridian_build_s", Float t_meridian);
      ("oracle", oracle);
    ]
  in
  Obj
    (match peak_rss_kb () with
    | Some kb -> fields @ [ ("peak_rss_kb", Int kb) ]
    | None -> fields)

let graph_section sizes =
  Obj
    [
      ("apsp", List (Stdlib.List.map graph_apsp_section sizes));
      ("construction", graph_construction_section ());
    ]

(* -------------------------------------------------------- scaling regime *)

(* The near-linear pipeline at sizes the eager path cannot touch: streamed
   torus generation, on-demand oracle metric, landmark + local-ball labels,
   sampled stretch. Parameters mirror Exp_scale so the deterministic
   quantities here cross-check the experiment's table; the timing keys and
   the peak-RSS high-water mark are what this section adds. Entries are
   keyed by "n" (bench_diff matches list entries on it), so a CI smoke at
   one size diffs cleanly against a baseline measured at several. *)
let scale_section n =
  let side = max 2 (int_of_float (Float.round (sqrt (float_of_int n)))) in
  let (g, t_gen) = time (fun () -> Ron_graph.Graph_gen.torus side side) in
  let nn = Ron_graph.Graph.size g in
  let (sp, t_sp) = time (fun () -> Ron_graph.Sp_metric.create g) in
  let k = max 4 (min 32 (1 + Ron_util.Bits.ilog2_floor nn)) in
  let (lm, t_lm) =
    time (fun () -> Ron_labeling.Landmark.build sp (Rng.create 97) ~k ~local_radius:2.0)
  in
  let (truth, t_truth) =
    time (fun () -> Ron_graph.Sp_metric.sample_ground_truth sp ~seed:1009 ~count:500)
  in
  let exact = ref 0 and hi_sum = ref 0.0 and hi_max = ref 1.0 in
  Array.iter
    (fun (u, v, d) ->
      let lo, hi = Ron_labeling.Landmark.estimate lm u v in
      if Float.equal lo hi then incr exact;
      let r = hi /. d in
      hi_sum := !hi_sum +. r;
      hi_max := Float.max !hi_max r)
    truth;
  let bits = Ron_labeling.Landmark.label_bits lm in
  let pairs = Array.length truth in
  let fields =
    [
      ("n", Int nn);
      ("torus_side", Int side);
      ("arcs", Int (2 * Ron_graph.Graph.edge_count g));
      ("sp_mode",
       String (match Ron_graph.Sp_metric.mode sp with
               | Ron_graph.Sp_metric.Eager -> "eager"
               | Ron_graph.Sp_metric.On_demand -> "ondemand"));
      ("beacons", Int k);
      ("graph_gen_s", Float t_gen);
      ("sp_metric_create_s", Float t_sp);
      ("landmark_build_s", Float t_lm);
      ("sample_ground_truth_s", Float t_truth);
      ("label_bits_max", Int (Array.fold_left max 0 bits));
      ("label_bits_mean",
       Float (float_of_int (Array.fold_left ( + ) 0 bits) /. float_of_int nn));
      ("sampled_pairs", Int pairs);
      ("exact_estimates", Int !exact);
      ("stretch_hi_mean", Float (!hi_sum /. float_of_int pairs));
      ("stretch_hi_max", Float !hi_max);
    ]
  in
  Obj
    (match peak_rss_kb () with
    | Some kb -> fields @ [ ("peak_rss_kb", Int kb) ]
    | None -> fields)

(* ----------------------------------------------------- serving hot path *)

(* The frozen-snapshot serving loop: freeze each scheme, round-trip it
   through a snapshot file, and serve a seeded Zipf-skewed mixed workload.
   Entries are keyed by scheme name (an Obj, not a List — five schemes
   would collide on bench_diff's "n" list matching). qps is the
   higher-is-better throughput key; the digest and the two booleans are
   the deterministic regression surface (byte-identical across job counts
   and across the snapshot round-trip); minor_words_per_query is
   machine-noise (bench_diff ignores it) but alloc_within_budget pins the
   zero-allocation claim. *)
let serve_scheme_entry ~scheme ~n ~queries =
  let module Server = Ron_serve.Server in
  let module Loop = Ron_serve.Loop in
  let (t, t_freeze) = time (fun () -> Ron_serve.Fixture.build ~scheme ~n ~seed:5) in
  let nodes = Server.size t in
  let file = Filename.temp_file "ron_serve" ".snap" in
  Server.save t file;
  let bytes = Server.byte_size t in
  let (loaded, t_load) =
    time (fun () ->
        match Server.load file with
        | Ok t -> t
        | Error e -> failwith (Printf.sprintf "serve bench: reload of %s failed: %s" scheme e))
  in
  Sys.remove file;
  let work = Loop.prepare t ~seed:5 ~queries ~zipf_s:1.1 ~route_frac:0.6 ~dist_frac:0.3 in
  let res = Loop.results_create queries in
  (* Cold: first batch served straight off the freshly loaded image. *)
  let t_cold = time_unit (fun () -> Loop.run ~jobs:1 loaded work res) in
  let d_loaded = Loop.digest res in
  Loop.run ~jobs:1 t work res;
  let d1 = Loop.digest res in
  Loop.run ~jobs:4 t work res;
  let d4 = Loop.digest res in
  (* Warm throughput, at the ambient job count. *)
  let t_warm = time_unit (fun () -> Loop.run t work res) in
  let qps = float_of_int queries /. Float.max t_warm 1e-9 in
  let hist =
    Ron_obs.Histogram.Bucketed.make (Printf.sprintf "serve.latency_ns.%s" scheme)
  in
  Loop.measure_latency ~limit:(min queries 5_000) t work res hist;
  let q p = Ron_obs.Histogram.Bucketed.quantile hist p in
  let words = Loop.minor_words_per_query t work res in
  ( Server.scheme_name t,
    Obj
      [
        ("n", Int nodes);
        ("queries", Int queries);
        ("snapshot_bytes", Int bytes);
        ("snapshot_bytes_per_node", Float (float_of_int bytes /. float_of_int (max 1 nodes)));
        ("freeze_s", Float t_freeze);
        ("snapshot_load_s", Float t_load);
        ("cold_run_s", Float t_cold);
        ("qps", Float qps);
        ("latency_p50_ns", Float (q 0.5));
        ("latency_p99_ns", Float (q 0.99));
        ("latency_p999_ns", Float (q 0.999));
        ("digest", String (Printf.sprintf "%x" d1));
        ("roundtrip_identical", Bool (d_loaded = d1));
        ("jobs_invariant", Bool (d1 = d4));
        ("minor_words_per_query", Float words);
        ("alloc_within_budget", Bool (words <= 8.0));
      ] )

let serve_section () =
  Obj
    (List.map
       (fun scheme ->
         (* The labelled scheme's per-hop neighbor selection re-scores via
            DLS labels, so its per-query cost dwarfs the others'; a smaller
            instance and workload keep the section inside a CI budget. *)
         let (n, queries) = if scheme = "labelled" then (64, 400) else (100, 4_000) in
         serve_scheme_entry ~scheme ~n ~queries)
       Ron_serve.Fixture.names)

(* ----------------------------------------------------- slo / flight path *)

(* Observed serving under the logical clock: the per-query cost is a pure
   function of the result, so the flight dump and the SLO verdict must be
   byte-identical at jobs 1 and 4 — the two *_jobs_invariant booleans pin
   exactly that. burn-rate keys are lower-is-better (Bench_keys classifies
   "burn_rate" as Timing); the remaining numbers are deterministic. *)
let slo_scheme_entry ~scheme ~n ~queries =
  let module Server = Ron_serve.Server in
  let module Loop = Ron_serve.Loop in
  let module Flight = Ron_obs.Flight in
  let module Slo = Ron_obs.Slo in
  let t = Ron_serve.Fixture.build ~scheme ~n ~seed:5 in
  let work = Loop.prepare t ~seed:5 ~queries ~zipf_s:1.1 ~route_frac:0.6 ~dist_frac:0.3 in
  let res = Loop.results_create queries in
  let objectives =
    match Slo.parse "p99<=65536,delivery>=0.9" with
    | Ok o -> o
    | Error e -> failwith ("slo bench: " ^ e)
  in
  let observed jobs =
    let fr = Flight.create ~window:256 ~per_window:4 ~retain:4 ~trace_every:8 () in
    let s =
      Slo.create
        ~window:(max 1 (queries / 8))
        ~name:(Printf.sprintf "slo.bench.%s" scheme)
        objectives
    in
    Loop.run_observed ~jobs ~flight:fr ~slo:s t work res;
    (fr, s, Ron_obs.Json.to_line (Flight.to_json fr), Ron_obs.Json.to_line (Slo.to_json s))
  in
  let (fr, s, f1, v1) = observed 1 in
  let (_, _, f4, v4) = observed 4 in
  let (obs, okd) =
    List.fold_left
      (fun (a, b) (w : Slo.window_summary) -> (a + w.Slo.w_count, b + w.Slo.w_ok))
      (0, 0) (Slo.windows s)
  in
  let traced =
    List.fold_left
      (fun a (_, es) ->
        a + List.length (List.filter (fun x -> x.Flight.x_trace <> None) es))
      0 (Flight.dump fr)
  in
  ( Server.scheme_name t,
    Obj
      [
        ("n", Int (Server.size t));
        ("queries", Int queries);
        ("slo_window", Int (Slo.window s));
        ("windows", Int (Slo.windows_closed s));
        ("violation_windows", Int (Slo.violated_windows s));
        ("max_burn_rate", Float (Slo.max_burn s));
        ("delivery_rate", Float (float_of_int okd /. float_of_int (max 1 obs)));
        ("recorded", Int (Flight.recorded fr));
        ("exemplars", Int (Flight.exemplar_count fr));
        ("traced_exemplars", Int traced);
        ("flight_jobs_invariant", Bool (String.equal f1 f4));
        ("verdict_jobs_invariant", Bool (String.equal v1 v4));
        ("slo_ok", Bool (Slo.ok s));
      ] )

let slo_section () =
  Obj
    (List.map
       (fun scheme ->
         (* Same instance sizing rationale as serve_section. *)
         let (n, queries) = if scheme = "labelled" then (64, 400) else (100, 4_000) in
         slo_scheme_entry ~scheme ~n ~queries)
       Ron_serve.Fixture.names)

(* -------------------------------------------- Table 1-3 headline numbers *)

let max_arr = Array.fold_left max 0

let quality_obj (q : Exp_common.route_quality) =
  [
    ("stretch_max", Float q.Exp_common.stretch_max);
    ("stretch_mean", Float q.Exp_common.stretch_mean);
    ("hops_max", Int q.Exp_common.hops_max);
    ("hops_mean", Float q.Exp_common.hops_mean);
    ("failures", Int q.Exp_common.failures);
    ("truncated", Int q.Exp_common.truncated);
    ("self_forwards", Int q.Exp_common.self_forwards);
    ("cycled", Int q.Exp_common.cycled);
    ("dropped", Int q.Exp_common.dropped);
    ("queries", Int q.Exp_common.queries);
    (* Observed per-query costs, straight from the ledger. *)
    ("ring_lookups_mean", Float q.Exp_common.ring_lookups_mean);
    ("ring_lookups_max", Int q.Exp_common.ring_lookups_max);
    ("dist_evals_mean", Float q.Exp_common.dist_evals_mean);
    ("zoom_steps_mean", Float q.Exp_common.zoom_steps_mean);
  ]

let table1 () =
  let sp = Ron_graph.Sp_metric.create (Ron_graph.Graph_gen.grid 8 8) in
  let b = Ron_routing.Basic.build sp ~delta:0.25 in
  let n = Ron_graph.Graph.size (Ron_graph.Sp_metric.graph sp) in
  let pairs = Exp_common.sample_pairs (Rng.create 101) ~n ~count:800 in
  let q =
    Exp_common.collect_routes
      ~route:(fun u v -> Ron_routing.Basic.route b ~src:u ~dst:v)
      ~dist:(fun u v -> Ron_graph.Sp_metric.dist sp u v)
      pairs
  in
  Obj
    (( "graph", String "grid8x8")
     :: ("scheme", String "thm2.1")
     :: ("table_bits_max", Int (max_arr (Ron_routing.Basic.table_bits b)))
     :: ("header_bits", Int (Ron_routing.Basic.header_bits b))
     :: quality_obj q)

let table2 () =
  let idx = Indexed.create (Generators.random_cloud (Rng.create 202) ~n:200 ~dim:2) in
  let s = Ron_routing.On_metric.build idx ~delta:0.25 in
  let n = Indexed.size idx in
  let pairs = Exp_common.sample_pairs (Rng.create 203) ~n ~count:800 in
  let q =
    Exp_common.collect_routes
      ~route:(fun u v -> Ron_routing.On_metric.route s ~src:u ~dst:v)
      ~dist:(fun u v -> Indexed.dist idx u v)
      pairs
  in
  Obj
    (("metric", String "cloud200")
     :: ("scheme", String "thm2.1-metric")
     :: ("out_degree_max", Int (Ron_routing.On_metric.out_degree s))
     :: ("out_degree_mean", Float (Ron_routing.On_metric.mean_out_degree s))
     :: ("table_bits_max", Int (max_arr (Ron_routing.On_metric.table_bits s)))
     :: ("header_bits", Int (Ron_routing.On_metric.header_bits s))
     :: quality_obj q)

let table3 () =
  let idx = Indexed.create (Generators.grid2d 8 8) in
  let tm = Ron_routing.Two_mode.build idx ~delta:0.125 in
  Ron_routing.Two_mode.reset_counters tm;
  let n = Indexed.size idx in
  let pairs = Exp_common.sample_pairs (Rng.create 303) ~n ~count:600 in
  let q =
    (* Two_mode.route counts mode switches in shared state: sequential. *)
    Exp_common.collect_routes ~parallel:false
      ~route:(fun u v -> Ron_routing.Two_mode.route tm ~src:u ~dst:v)
      ~dist:(fun u v -> Indexed.dist idx u v)
      pairs
  in
  Obj
    (("metric", String "grid8x8")
     :: ("scheme", String "thm4.2-two-mode")
     :: ("m1_bits_max", Int (max_arr (Ron_routing.Two_mode.table_bits_m1 tm)))
     :: ("m2_bits_max", Int (max_arr (Ron_routing.Two_mode.table_bits_m2 tm)))
     :: ("header_bits", Int (Ron_routing.Two_mode.header_bits tm))
     :: ("mode2_switches", Int (Ron_routing.Two_mode.mode2_switches tm))
     :: quality_obj q)

(* ---------------------------------------------------- fault injection *)

(* A fixed fault model over the Table 1 workload: how the headline scheme
   degrades when 5% of nodes crash and 1% of hops drop. Deterministic (pure
   function of the seeds), so the section doubles as a regression check on
   the fault layer's delivery/detour numbers. *)
let fault_section () =
  let module Fault = Ron_fault.Fault in
  let module Probe = Ron_obs.Probe in
  let module Counter = Ron_obs.Counter in
  let sp = Ron_graph.Sp_metric.create (Ron_graph.Graph_gen.grid 8 8) in
  let b = Ron_routing.Basic.build sp ~delta:0.25 in
  let n = Ron_graph.Graph.size (Ron_graph.Sp_metric.graph sp) in
  let fault =
    Fault.make ~seed:4242 ~crash_fraction:0.05 ~drop_rate:0.01 ~dead_link_fraction:0.01 ~n ()
  in
  let pairs =
    Exp_common.sample_pairs (Rng.create 101) ~n ~count:800
    |> List.filter (fun (u, v) -> not (Fault.crashed fault u || Fault.crashed fault v))
  in
  let d0 = Counter.value Probe.fault_drops
  and c0 = Counter.value Probe.fault_crashed_hits
  and l0 = Counter.value Probe.fault_dead_links
  and r0 = Counter.value Probe.fault_retries
  and v0 = Counter.value Probe.fault_detours in
  let q =
    Exp_common.collect_routes_keyed
      ~route:(fun ~query u v ->
        Ron_routing.Basic.route_wrapped (Fault.wrapper fault ~query) b ~src:u ~dst:v)
      ~dist:(fun u v -> Ron_graph.Sp_metric.dist sp u v)
      pairs
  in
  let delivered = q.Exp_common.queries - q.Exp_common.failures in
  Obj
    (("graph", String "grid8x8")
     :: ("scheme", String "thm2.1")
     :: ("model", String (Fault.describe fault))
     :: ("crashed_nodes", Int (Fault.crash_count fault))
     :: ("delivery_rate",
         Float (float_of_int delivered /. float_of_int (max 1 q.Exp_common.queries)))
     :: ("fault_drops", Int (Counter.value Probe.fault_drops - d0))
     :: ("fault_crashed_hits", Int (Counter.value Probe.fault_crashed_hits - c0))
     :: ("fault_dead_links", Int (Counter.value Probe.fault_dead_links - l0))
     :: ("fault_retries", Int (Counter.value Probe.fault_retries - r0))
     :: ("fault_detours", Int (Counter.value Probe.fault_detours - v0))
     :: quality_obj q)

(* ------------------------------------------------------------------ churn *)

(* Dynamic membership over the Table 1 workload: symmetric join/leave
   churn with incremental ring repair, one object per rate. Deterministic
   (pure function of the schedule seed), so the section regression-checks
   delivery, stretch inflation, query-time staleness, and repair cost per
   event. *)
let churn_section () =
  let module Churn = Ron_churn.Churn in
  let module Probe = Ron_obs.Probe in
  let module Counter = Ron_obs.Counter in
  let sp = Ron_graph.Sp_metric.create (Ron_graph.Graph_gen.grid 8 8) in
  let b = Ron_routing.Basic.build sp ~delta:0.25 in
  let n = Ron_graph.Graph.size (Ron_graph.Sp_metric.graph sp) in
  let pairs = Exp_common.sample_pairs (Rng.create 101) ~n ~count:800 in
  let base_stretch = ref nan in
  let row rate =
    let sched =
      Churn.Schedule.make ~seed:9191 ~n ~slots:120 ~join_rate:rate ~leave_rate:rate ()
    in
    let st = Churn.state_of_schedule sched in
    let rr =
      Churn.Ring_repair.create st (Ron_routing.Basic.substrate b)
        (Ron_routing.Basic.rings_collection b)
    in
    let was_on = !Probe.on in
    Probe.on := true;
    let summary =
      Fun.protect
        ~finally:(fun () -> Probe.on := was_on)
        (fun () ->
          Churn.Driver.apply sched st
            ~on_leave:(fun v -> Churn.Ring_repair.leave rr v)
            ~on_join:(fun v -> Churn.Ring_repair.join rr v)
            ())
    in
    let live_pairs =
      List.filter (fun (u, v) -> Churn.is_live st u && Churn.is_live st v) pairs
    in
    let s0 = Counter.value Probe.churn_stale_hits
    and t0 = Counter.value Probe.churn_detours in
    let cw = Churn.wrapper st in
    let q =
      Exp_common.collect_routes_keyed
        ~route:(fun ~query:_ u v -> Ron_routing.Basic.route_wrapped cw b ~src:u ~dst:v)
        ~dist:(fun u v -> Ron_graph.Sp_metric.dist sp u v)
        live_pairs
    in
    if Float.is_nan !base_stretch then base_stretch := q.Exp_common.stretch_mean;
    let delivered = q.Exp_common.queries - q.Exp_common.failures in
    let events = summary.Churn.Driver.joins + summary.Churn.Driver.leaves in
    Obj
      (("graph", String "grid8x8")
       :: ("scheme", String "thm2.1")
       :: ("model", String (Churn.Schedule.describe sched))
       :: ("rate", Float rate)
       :: ("churn_events", Int events)
       :: ("churn_joins", Int summary.Churn.Driver.joins)
       :: ("churn_leaves", Int summary.Churn.Driver.leaves)
       :: ("live_nodes", Int (Churn.live_count st))
       :: ("delivery_rate",
           Float (float_of_int delivered /. float_of_int (max 1 q.Exp_common.queries)))
       :: ("stretch_inflation", Float (q.Exp_common.stretch_mean /. !base_stretch))
       :: ("churn_stale_hits", Int (Counter.value Probe.churn_stale_hits - s0))
       :: ("churn_detours", Int (Counter.value Probe.churn_detours - t0))
       :: ("churn_repair_updates", Int summary.Churn.Driver.cost.Churn.updates)
       :: ("churn_refills", Int summary.Churn.Driver.cost.Churn.refills)
       :: ("repair_updates_per_event",
           Float
             (float_of_int summary.Churn.Driver.cost.Churn.updates
             /. float_of_int (max 1 events)))
       :: ("stale_after_repair", Int (Churn.Ring_repair.stale_members rr))
       :: quality_obj q)
  in
  List (Stdlib.List.map row [ 0.0; 0.02; 0.05; 0.1 ])

(* ------------------------------------------------------------------ main *)

let timestamp () =
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let ns_clock () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let run ?(scale_sizes = [ 10_000 ]) ?(scale_only = false) ?telemetry
    ?(telemetry_interval_ms = 500) ~file ~sizes () =
  (* Open the output first so a bad path fails before minutes of measuring. *)
  let oc =
    try open_out file
    with Sys_error e ->
      Printf.eprintf "cannot write --json output: %s\n" e;
      exit 1
  in
  (* Phase profiling rides along on the whole run with a real clock: the
     report gains a "profile" section breaking construction and query time
     down per phase (bench_diff ignores it — wall-clock phase shapes are
     not regression signals). *)
  Ron_obs.Profile.enable ~clock:ns_clock ();
  Ron_obs.Profile.reset ();
  (* The telemetry sampler (if requested) rides along too. It needs the
     probes on — which perturbs the timed sections slightly, so pass
     --telemetry only when the time series is what you are measuring (the
     measured overhead is ~1% on the scale smoke; see EXPERIMENTS.md). *)
  (match telemetry with
  | Some tfile ->
    if telemetry_interval_ms < 1 then begin
      Printf.eprintf "--telemetry-interval must be >= 1\n";
      exit 1
    end;
    Ron_obs.Telemetry.start ~clock:ns_clock
      ~interval:(Int64.of_int (telemetry_interval_ms * 1_000_000))
      (Ron_obs.Trace.channel_sink (open_out tfile));
    Ron_obs.enable ()
  | None -> ());
  let env_fields =
    [
      ("schema", String "ron-bench/1");
      ("timestamp", String (timestamp ()));
      ("ocaml_version", String Sys.ocaml_version);
      ("ron_jobs", Int (Pool.jobs ()));
      ("recommended_domains", Int (Domain.recommended_domain_count ()));
      ("word_size", Int Sys.word_size);
    ]
  in
  let sections =
    if scale_only then begin
      (* The scale-smoke path: one near-linear pipeline per size, nothing
         quadratic — fits a CI time budget even at n = 10^5. *)
      Printf.printf "\n[JSON] measuring scaling regime at n in {%s} (RON_JOBS=%d)...\n%!"
        (String.concat ", " (List.map string_of_int scale_sizes))
        (Pool.jobs ());
      [ ("scale", List (Stdlib.List.map scale_section scale_sizes)) ]
    end
    else begin
      Printf.printf "\n[JSON] measuring index hot path at n in {%s} (RON_JOBS=%d)...\n%!"
        (String.concat ", " (List.map string_of_int sizes))
        (Pool.jobs ());
      let index = Stdlib.List.map index_section sizes in
      Printf.printf "[JSON] measuring graph all-pairs + construction at n in {%s}...\n%!"
        (String.concat ", " (List.map string_of_int sizes));
      let graph = graph_section sizes in
      Printf.printf "[JSON] measuring scaling regime at n in {%s}...\n%!"
        (String.concat ", " (List.map string_of_int scale_sizes));
      let scale = List (Stdlib.List.map scale_section scale_sizes) in
      Printf.printf "[JSON] measuring Table 1-3 quantities...\n%!";
      (* The timed sections above ran with observability off; reset so the
         obs section below reflects exactly the Table 1-3 query workloads
         (collect_routes force-enables the probes while routing). *)
      Ron_obs.reset ();
      let t1 = table1 () and t2 = table2 () and t3 = table3 () in
      let fault = fault_section () in
      let churn = churn_section () in
      Printf.printf "[JSON] measuring frozen-snapshot serving hot path...\n%!";
      let serve = serve_section () in
      Printf.printf "[JSON] measuring observed serving (flight recorder + SLO)...\n%!";
      let slo = slo_section () in
      [
        ("index", List index);
        ("graph", graph);
        ("scale", scale);
        ("table1", t1);
        ("table2", t2);
        ("table3", t3);
        ("fault", fault);
        ("churn", churn);
        ("serve", serve);
        ("slo", slo);
        ("obs", Ron_obs.snapshot ());
      ]
    end
  in
  let report = Obj (env_fields @ sections @ [ ("profile", Ron_obs.Profile.to_json ()) ]) in
  Ron_obs.Telemetry.stop ();
  Ron_obs.Profile.disable ();
  output_string oc (to_string report);
  close_out oc;
  Printf.printf "[JSON] wrote %s\n%!" file
