(* Machine-readable performance report: construction/query timings for the
   metric-index hot path (seed baseline vs optimized, sequential vs
   parallel) plus the headline Table 1-3 quantities, emitted as JSON so
   successive PRs accumulate a perf trajectory (see EXPERIMENTS.md,
   "Performance"). The encoder is Ron_obs.Json, shared with the CLI's
   --metrics-out; no external JSON dependency. *)

module Rng = Ron_util.Rng
module Pool = Ron_util.Pool
module Exp_common = Ron_experiments.Exp_common
module Indexed = Ron_metric.Indexed
module Generators = Ron_metric.Generators
module Net = Ron_metric.Net
module Measure = Ron_metric.Measure
open Ron_obs.Json

let to_string = Ron_obs.Json.to_string

(* ---------------------------------------------------------------- timing *)

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let time_unit f = snd (time f)

(* ----------------------------------------------------- index hot path *)

let index_same a b =
  let n = Indexed.size a in
  let ok = ref (n = Indexed.size b) in
  for u = 0 to n - 1 do
    for k = 0 to n - 1 do
      let (va, da) = Indexed.nth_neighbor a u k and (vb, db) = Indexed.nth_neighbor b u k in
      if va <> vb || da <> db then ok := false
    done
  done;
  !ok

let index_section n =
  let m = Generators.random_cloud (Rng.create 7) ~n ~dim:2 in
  let (reference, t_ref) = time (fun () -> Indexed.create_reference m) in
  let (seq, t_seq) = time (fun () -> Indexed.create ~jobs:1 m) in
  let (par, t_par) = time (fun () -> Indexed.create m) in
  let equal = index_same reference seq && index_same seq par in
  (* Query costs over the optimized index. *)
  let qrng = Rng.create 77 in
  let queries = 200_000 in
  let diam = Indexed.diameter par in
  let t_ball_count =
    time_unit (fun () ->
        for _ = 1 to queries do
          ignore (Indexed.ball_count par (Rng.int qrng n) (Rng.float qrng diam))
        done)
  in
  let t_radius =
    time_unit (fun () ->
        for _ = 1 to queries do
          ignore (Indexed.radius_for_count par (Rng.int qrng n) (1 + Rng.int qrng n))
        done)
  in
  let hier, t_hier = time (fun () -> Net.Hierarchy.create par) in
  let t_measure = time_unit (fun () -> ignore (Measure.create par hier)) in
  Obj
    [
      ("n", Int n);
      ("indexed_create_reference_s", Float t_ref);
      ("indexed_create_jobs1_s", Float t_seq);
      ("indexed_create_parallel_s", Float t_par);
      ("speedup_jobs1_vs_reference", Float (t_ref /. t_seq));
      ("speedup_parallel_vs_reference", Float (t_ref /. t_par));
      ("parallel_equals_sequential_equals_reference", Bool equal);
      ("ball_count_ns_per_query", Float (t_ball_count *. 1e9 /. float_of_int queries));
      ("radius_for_count_ns_per_query", Float (t_radius *. 1e9 /. float_of_int queries));
      ("net_hierarchy_create_s", Float t_hier);
      ("measure_create_s", Float t_measure);
    ]

(* -------------------------------------------- Table 1-3 headline numbers *)

let max_arr = Array.fold_left max 0

let quality_obj (q : Exp_common.route_quality) =
  [
    ("stretch_max", Float q.Exp_common.stretch_max);
    ("stretch_mean", Float q.Exp_common.stretch_mean);
    ("hops_max", Int q.Exp_common.hops_max);
    ("hops_mean", Float q.Exp_common.hops_mean);
    ("failures", Int q.Exp_common.failures);
    ("truncated", Int q.Exp_common.truncated);
    ("self_forwards", Int q.Exp_common.self_forwards);
    ("queries", Int q.Exp_common.queries);
    (* Observed per-query costs, straight from the ledger. *)
    ("ring_lookups_mean", Float q.Exp_common.ring_lookups_mean);
    ("ring_lookups_max", Int q.Exp_common.ring_lookups_max);
    ("dist_evals_mean", Float q.Exp_common.dist_evals_mean);
    ("zoom_steps_mean", Float q.Exp_common.zoom_steps_mean);
  ]

let table1 () =
  let sp = Ron_graph.Sp_metric.create (Ron_graph.Graph_gen.grid 8 8) in
  let b = Ron_routing.Basic.build sp ~delta:0.25 in
  let n = Ron_graph.Graph.size (Ron_graph.Sp_metric.graph sp) in
  let pairs = Exp_common.sample_pairs (Rng.create 101) ~n ~count:800 in
  let q =
    Exp_common.collect_routes
      ~route:(fun u v -> Ron_routing.Basic.route b ~src:u ~dst:v)
      ~dist:(fun u v -> Ron_graph.Sp_metric.dist sp u v)
      pairs
  in
  Obj
    (( "graph", String "grid8x8")
     :: ("scheme", String "thm2.1")
     :: ("table_bits_max", Int (max_arr (Ron_routing.Basic.table_bits b)))
     :: ("header_bits", Int (Ron_routing.Basic.header_bits b))
     :: quality_obj q)

let table2 () =
  let idx = Indexed.create (Generators.random_cloud (Rng.create 202) ~n:200 ~dim:2) in
  let s = Ron_routing.On_metric.build idx ~delta:0.25 in
  let n = Indexed.size idx in
  let pairs = Exp_common.sample_pairs (Rng.create 203) ~n ~count:800 in
  let q =
    Exp_common.collect_routes
      ~route:(fun u v -> Ron_routing.On_metric.route s ~src:u ~dst:v)
      ~dist:(fun u v -> Indexed.dist idx u v)
      pairs
  in
  Obj
    (("metric", String "cloud200")
     :: ("scheme", String "thm2.1-metric")
     :: ("out_degree_max", Int (Ron_routing.On_metric.out_degree s))
     :: ("out_degree_mean", Float (Ron_routing.On_metric.mean_out_degree s))
     :: ("table_bits_max", Int (max_arr (Ron_routing.On_metric.table_bits s)))
     :: ("header_bits", Int (Ron_routing.On_metric.header_bits s))
     :: quality_obj q)

let table3 () =
  let idx = Indexed.create (Generators.grid2d 8 8) in
  let tm = Ron_routing.Two_mode.build idx ~delta:0.125 in
  Ron_routing.Two_mode.reset_counters tm;
  let n = Indexed.size idx in
  let pairs = Exp_common.sample_pairs (Rng.create 303) ~n ~count:600 in
  let q =
    (* Two_mode.route counts mode switches in shared state: sequential. *)
    Exp_common.collect_routes ~parallel:false
      ~route:(fun u v -> Ron_routing.Two_mode.route tm ~src:u ~dst:v)
      ~dist:(fun u v -> Indexed.dist idx u v)
      pairs
  in
  Obj
    (("metric", String "grid8x8")
     :: ("scheme", String "thm4.2-two-mode")
     :: ("m1_bits_max", Int (max_arr (Ron_routing.Two_mode.table_bits_m1 tm)))
     :: ("m2_bits_max", Int (max_arr (Ron_routing.Two_mode.table_bits_m2 tm)))
     :: ("header_bits", Int (Ron_routing.Two_mode.header_bits tm))
     :: ("mode2_switches", Int (Ron_routing.Two_mode.mode2_switches tm))
     :: quality_obj q)

(* ------------------------------------------------------------------ main *)

let timestamp () =
  let tm = Unix.localtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d" (tm.Unix.tm_year + 1900) (tm.Unix.tm_mon + 1)
    tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min tm.Unix.tm_sec

let run ~file ~sizes =
  (* Open the output first so a bad path fails before minutes of measuring. *)
  let oc =
    try open_out file
    with Sys_error e ->
      Printf.eprintf "cannot write --json output: %s\n" e;
      exit 1
  in
  Printf.printf "\n[JSON] measuring index hot path at n in {%s} (RON_JOBS=%d)...\n%!"
    (String.concat ", " (List.map string_of_int sizes))
    (Pool.jobs ());
  let index = Stdlib.List.map index_section sizes in
  Printf.printf "[JSON] measuring Table 1-3 quantities...\n%!";
  (* The timed index sections above ran with observability off; reset so the
     obs section below reflects exactly the Table 1-3 query workloads
     (collect_routes force-enables the probes while routing). *)
  Ron_obs.reset ();
  let t1 = table1 () and t2 = table2 () and t3 = table3 () in
  let report =
    Obj
      [
        ("schema", String "ron-bench/1");
        ("timestamp", String (timestamp ()));
        ("ocaml_version", String Sys.ocaml_version);
        ("ron_jobs", Int (Pool.jobs ()));
        ("recommended_domains", Int (Domain.recommended_domain_count ()));
        ("word_size", Int Sys.word_size);
        ("index", List index);
        ("table1", t1);
        ("table2", t2);
        ("table3", t3);
        ("obs", Ron_obs.snapshot ());
      ]
  in
  output_string oc (to_string report);
  close_out oc;
  Printf.printf "[JSON] wrote %s\n%!" file
